"""Command-line interface for the independence analyzer.

Subcommands::

    python -m repro analyze  --dtd schema.dtd --root site \\
        --query '//title' --update 'delete //price' [--explain] [--types]
    python -m repro validate --dtd schema.dtd --root site document.xml
    python -m repro generate --dtd schema.dtd --root site --bytes 10000 \\
        [--seed 7] [--out doc.xml]
    python -m repro infer-dtd doc1.xml doc2.xml ...
    python -m repro bench fig3a|fig3b|fig3c|fig3d|all
    python -m repro bench-batch [--queries N] [--updates N] \\
        [--processes N]
    python -m repro fuzz [--count N] [--seed S] [--max-tags N] \\
        [--json report.json] [--corpus-dir DIR]
    python -m repro serve [--port P] [--store FILE] [--window MS] \\
        [--mode batched|engine|oneshot] [--preload xmark ...]
    python -m repro loadgen [--port P] [--clients N] [--requests N] \\
        [--source bench|exprgen] [--json report.json]
    python -m repro serve-bench [--json BENCH_serve.json]

``--dtd`` accepts a file of ``<!ELEMENT ...>`` declarations; the built-in
schemas are available as ``--builtin xmark|bib|paper-doc|paper-d1``.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.baseline import baseline_analyze
from .analysis.explain import explain
from .analysis.independence import analyze
from .schema.catalog import (
    bib_dtd,
    paper_d1_dtd,
    paper_doc_dtd,
    xmark_dtd,
)
from .schema.dtd import DTD
from .schema.infer import infer_dtd
from .xmldm.generator import generate_document
from .xmldm.parse import parse_xml
from .xmldm.serialize import serialize
from .xmldm.validate import ValidationError, validate

_BUILTINS = {
    "xmark": xmark_dtd,
    "bib": bib_dtd,
    "paper-doc": paper_doc_dtd,
    "paper-d1": paper_d1_dtd,
}


def _load_schema(args: argparse.Namespace) -> DTD:
    if getattr(args, "builtin", None):
        return _BUILTINS[args.builtin]()
    if not getattr(args, "dtd", None):
        raise SystemExit("error: pass --dtd FILE or --builtin NAME")
    with open(args.dtd, encoding="utf-8") as handle:
        text = handle.read()
    if not args.root:
        raise SystemExit("error: --root is required with --dtd")
    return DTD.from_dtd_text(args.root, text)


def _add_schema_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dtd", help="file of <!ELEMENT ...> declarations")
    parser.add_argument("--root", help="start symbol for --dtd")
    parser.add_argument("--builtin", choices=sorted(_BUILTINS),
                        help="use a built-in schema")


def _cmd_analyze(args: argparse.Namespace) -> int:
    schema = _load_schema(args)
    report = analyze(args.query, args.update, schema, k=args.k)
    if args.explain:
        print(explain(args.query, args.update, schema, report), end="")
    else:
        print(report)
    if args.types:
        baseline = baseline_analyze(args.query, args.update, schema)
        verdict = "independent" if baseline.independent else "dependent"
        overlap = f" (overlap: {sorted(baseline.overlap)})" \
            if baseline.overlap else ""
        print(f"type baseline [6]: {verdict}{overlap}")
    return 0 if report.independent else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    schema = _load_schema(args)
    with open(args.document, encoding="utf-8") as handle:
        tree = parse_xml(handle.read())
    try:
        validate(tree, schema)
    except ValidationError as error:
        print(f"INVALID: {error}")
        return 1
    print(f"valid ({tree.size()} nodes)")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    schema = _load_schema(args)
    tree = generate_document(schema, args.bytes, seed=args.seed)
    text = serialize(tree.store, tree.root, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out} ({tree.size()} nodes)")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_infer_dtd(args: argparse.Namespace) -> int:
    corpus = []
    for path in args.documents:
        with open(path, encoding="utf-8") as handle:
            corpus.append(parse_xml(handle.read()))
    from .schema.regex import Epsilon

    dtd = infer_dtd(corpus)
    for tag in sorted(dtd.rules):
        model = dtd.rules[tag]
        rendered = "EMPTY" if isinstance(model, Epsilon) else str(model)
        print(f"<!ELEMENT {tag} {rendered}>")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench.harness import main as harness_main

    return harness_main([args.experiment])


def _cmd_bench_batch(args: argparse.Namespace) -> int:
    from .bench.batch import run_bench_batch

    results = run_bench_batch(
        n_queries=args.queries,
        n_updates=args.updates,
        processes=args.processes,
    )
    return 0 if results["verdicts_equal"] else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json as json_module

    from .testkit.fuzz import FuzzConfig, run_fuzz

    if args.queries < 1 or args.updates < 1:
        raise SystemExit("error: --queries and --updates must be >= 1")
    if not 1 <= args.min_tags <= args.max_tags:
        raise SystemExit("error: need 1 <= --min-tags <= --max-tags")
    config = FuzzConfig(
        count=args.count,
        seed=args.seed,
        queries_per_schema=args.queries,
        updates_per_schema=args.updates,
        min_tags=args.min_tags,
        max_tags=args.max_tags,
        recursion_probability=args.recursion,
        expr_depth=args.depth,
        corpus_docs=args.docs,
        corpus_bytes=args.doc_bytes,
        processes=args.processes,
        shrink_budget=args.shrink_budget,
        corpus_dir=args.corpus_dir,
    )
    report = run_fuzz(config, progress=args.progress)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_json(), handle, indent=2,
                             sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 1 if report.counterexamples else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.server import ServeConfig, run_service

    config = ServeConfig(
        host=args.host,
        port=args.port,
        store_path=args.store,
        batch_window=args.window / 1e3,
        max_batch=args.max_batch,
        analysis_mode=args.mode,
        max_schemas=args.max_schemas,
        max_documents=args.max_documents,
        pair_cache_size=args.pair_cache,
        preload=tuple(args.preload),
    )

    def ready(service, host, port):
        print(f"repro serve: listening on {host}:{port} "
              f"(mode={config.analysis_mode}, store={config.store_path}, "
              f"window={args.window}ms)", flush=True)

    try:
        asyncio.run(run_service(config, ready=ready))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json as json_module

    from .serve.loadgen import LoadgenConfig, run_loadgen_sync

    report = run_loadgen_sync(LoadgenConfig(
        host=args.host,
        port=args.port,
        schema=args.schema,
        source=args.source,
        n_queries=args.queries,
        n_updates=args.updates,
        clients=args.clients,
        requests=args.requests,
        seed=args.seed,
    ))
    print(f"loadgen: {report['completed']}/{report['workload']['requests']}"
          f" ok, {report['errors']} errors, "
          f"{report['throughput_rps']:.0f} req/s, "
          f"p50 {report['latency_ms']['p50']:.2f} ms, "
          f"p99 {report['latency_ms']['p99']:.2f} ms, "
          f"{report['service']['batches']} batches "
          f"({report['service']['coalesced_requests']} coalesced)")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if report["errors"]:
        return 1
    if args.expect_coalescing and (
            not report["service"]["batches"]
            or not report["service"]["coalesced_requests"]):
        # batches alone is not enough: 600 one-entry batches would mean
        # the admission window coalesced nothing.
        print("error: --expect-coalescing, but no requests coalesced "
              f"({report['service']['batches']} batches, "
              f"{report['service']['coalesced_requests']} coalesced)")
        return 1
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json as json_module

    from .bench.serve_bench import run_serve_bench

    results = run_serve_bench(
        workload={"requests": args.requests, "clients": args.clients},
        batch_window=args.window / 1e3,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if results["verdicts_identical"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Type-based XML query-update independence "
                    "(Bidoit, Colazzo, Ulliana, VLDB 2012)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze_cmd = commands.add_parser(
        "analyze", help="statically decide independence of a pair"
    )
    _add_schema_options(analyze_cmd)
    analyze_cmd.add_argument("--query", required=True)
    analyze_cmd.add_argument("--update", required=True)
    analyze_cmd.add_argument("--k", type=int, default=None,
                             help="override the derived multiplicity")
    analyze_cmd.add_argument("--explain", action="store_true",
                             help="print the chain-level explanation")
    analyze_cmd.add_argument("--types", action="store_true",
                             help="also run the type baseline [6]")
    analyze_cmd.set_defaults(func=_cmd_analyze)

    validate_cmd = commands.add_parser(
        "validate", help="validate a document against a DTD"
    )
    _add_schema_options(validate_cmd)
    validate_cmd.add_argument("document")
    validate_cmd.set_defaults(func=_cmd_validate)

    generate_cmd = commands.add_parser(
        "generate", help="generate a random valid document"
    )
    _add_schema_options(generate_cmd)
    generate_cmd.add_argument("--bytes", type=int, default=10_000)
    generate_cmd.add_argument("--seed", type=int, default=0)
    generate_cmd.add_argument("--out")
    generate_cmd.set_defaults(func=_cmd_generate)

    infer_cmd = commands.add_parser(
        "infer-dtd", help="infer a DTD from example documents"
    )
    infer_cmd.add_argument("documents", nargs="+")
    infer_cmd.set_defaults(func=_cmd_infer_dtd)

    bench_cmd = commands.add_parser(
        "bench", help="regenerate a Figure 3 panel"
    )
    bench_cmd.add_argument(
        "experiment", choices=["fig3a", "fig3b", "fig3c", "fig3d", "all"]
    )
    bench_cmd.set_defaults(func=_cmd_bench)

    batch_cmd = commands.add_parser(
        "bench-batch",
        help="amortized batch-engine analysis time vs one-shot analyze()",
    )
    batch_cmd.add_argument("--queries", type=int, default=10,
                           help="number of XMark benchmark views")
    batch_cmd.add_argument("--updates", type=int, default=10,
                           help="number of XMark benchmark updates")
    batch_cmd.add_argument("--processes", type=int, default=None,
                           help="also time a process-pool fan-out")
    batch_cmd.set_defaults(func=_cmd_bench_batch)

    fuzz_cmd = commands.add_parser(
        "fuzz",
        help="differential fuzz: static vs baseline vs dynamic "
             "independence on random (schema, query, update) scenarios",
    )
    fuzz_cmd.add_argument("--count", type=int, default=500,
                          help="query x update pairs to examine")
    fuzz_cmd.add_argument("--seed", type=int, default=0,
                          help="campaign seed (fully deterministic)")
    fuzz_cmd.add_argument("--queries", type=int, default=4,
                          help="queries per generated schema")
    fuzz_cmd.add_argument("--updates", type=int, default=4,
                          help="updates per generated schema")
    fuzz_cmd.add_argument("--min-tags", type=int, default=3,
                          help="minimum schema alphabet size")
    fuzz_cmd.add_argument("--max-tags", type=int, default=7,
                          help="maximum schema alphabet size")
    fuzz_cmd.add_argument("--recursion", type=float, default=0.4,
                          help="probability a schema is recursive")
    fuzz_cmd.add_argument("--depth", type=int, default=2,
                          help="expression nesting depth")
    fuzz_cmd.add_argument("--docs", type=int, default=4,
                          help="corpus documents per scenario")
    fuzz_cmd.add_argument("--doc-bytes", type=int, default=700,
                          help="target bytes per corpus document")
    fuzz_cmd.add_argument("--processes", type=int, default=None,
                          help="fan the static matrix over a process pool")
    fuzz_cmd.add_argument("--shrink-budget", type=int, default=250,
                          help="differential re-checks per shrink")
    fuzz_cmd.add_argument("--json", help="write the JSON report here")
    fuzz_cmd.add_argument("--corpus-dir",
                          help="save shrunk counterexamples here "
                               "(e.g. tests/corpus)")
    fuzz_cmd.add_argument("--progress", action="store_true",
                          help="print progress every 10 scenarios")
    fuzz_cmd.set_defaults(func=_cmd_fuzz)

    serve_cmd = commands.add_parser(
        "serve",
        help="run the concurrent independence service (JSON lines/TCP)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8765,
                           help="TCP port (0 picks a free one)")
    serve_cmd.add_argument("--store", default=":memory:",
                           help="SQLite verdict store path "
                                "(default: in-memory)")
    serve_cmd.add_argument("--window", type=float, default=2.0,
                           help="micro-batch admission window, ms")
    serve_cmd.add_argument("--max-batch", type=int, default=512,
                           help="flush a window early at this many "
                                "requests")
    serve_cmd.add_argument("--mode", default="batched",
                           choices=["batched", "engine", "oneshot"],
                           help="analyze path: micro-batched (default), "
                                "shared engine without batching, or "
                                "stateless one-shot")
    serve_cmd.add_argument("--max-schemas", type=int, default=256,
                           help="LRU bound on registered schemas")
    serve_cmd.add_argument("--max-documents", type=int, default=64,
                           help="LRU bound on loaded documents")
    serve_cmd.add_argument("--pair-cache", type=int, default=None,
                           help="per-engine pair-memo LRU bound")
    serve_cmd.add_argument("--preload", nargs="*", default=["xmark"],
                           help="builtin schemas to register at startup")
    serve_cmd.set_defaults(func=_cmd_serve)

    loadgen_cmd = commands.add_parser(
        "loadgen",
        help="closed-loop load generator against a running service",
    )
    loadgen_cmd.add_argument("--host", default="127.0.0.1")
    loadgen_cmd.add_argument("--port", type=int, default=8765)
    loadgen_cmd.add_argument("--schema", default="xmark",
                             help="schema ref sent with each request")
    loadgen_cmd.add_argument("--source", default="bench",
                             choices=["bench", "exprgen"],
                             help="workload pool: paper benchmark "
                                  "views/updates or schema-aware "
                                  "random expressions")
    loadgen_cmd.add_argument("--queries", type=int, default=20,
                             help="query pool size")
    loadgen_cmd.add_argument("--updates", type=int, default=20,
                             help="update pool size")
    loadgen_cmd.add_argument("--clients", type=int, default=16,
                             help="concurrent closed-loop connections")
    loadgen_cmd.add_argument("--requests", type=int, default=2000,
                             help="total requests across all clients")
    loadgen_cmd.add_argument("--seed", type=int, default=0)
    loadgen_cmd.add_argument("--json", help="write the full report here")
    loadgen_cmd.add_argument("--expect-coalescing", action="store_true",
                             help="fail unless requests actually "
                                  "coalesced into shared batches "
                                  "(CI smoke)")
    loadgen_cmd.set_defaults(func=_cmd_loadgen)

    serve_bench_cmd = commands.add_parser(
        "serve-bench",
        help="micro-batched vs batching-disabled service throughput "
             "(the PR 3 acceptance gate workload)",
    )
    serve_bench_cmd.add_argument("--requests", type=int, default=1200,
                                 help="requests per mode")
    serve_bench_cmd.add_argument("--clients", type=int, default=32)
    serve_bench_cmd.add_argument("--window", type=float, default=2.0,
                                 help="admission window, ms")
    serve_bench_cmd.add_argument("--json",
                                 help="write the comparison JSON here")
    serve_bench_cmd.set_defaults(func=_cmd_serve_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
