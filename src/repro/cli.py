"""Command-line interface for the independence analyzer.

Subcommands::

    python -m repro analyze  --dtd schema.dtd --root site \\
        --query '//title' --update 'delete //price' [--explain] [--types]
    python -m repro validate --dtd schema.dtd --root site document.xml
    python -m repro generate --dtd schema.dtd --root site --bytes 10000 \\
        [--seed 7] [--out doc.xml]
    python -m repro infer-dtd doc1.xml doc2.xml ...
    python -m repro load document.xml --builtin xmark \\
        [--project '//title' ...] [--store sqlite:///docs.db --doc ID]
    python -m repro query '//title' --store sqlite:///docs.db --doc ID \\
        [--limit N]
    python -m repro explain '//title' --store sqlite:///docs.db --doc ID
    python -m repro metrics HOST:PORT | http://HOST:PORT/metrics [--raw]
    python -m repro bench fig3a|fig3b|fig3c|fig3d|all
    python -m repro docstore-bench [--bytes N] [--seed S] \\
        [--json BENCH_docstore.json]
    python -m repro bench-batch [--queries N] [--updates N] \\
        [--processes N]
    python -m repro fuzz [--count N] [--seed S] [--max-tags N] \\
        [--json report.json] [--corpus-dir DIR]
    python -m repro serve [--port P] [--store URL] [--window MS] \\
        [--shards N] [--mode batched|engine|oneshot] \\
        [--max-documents N] [--preload xmark ...]
    python -m repro loadgen [--port P] [--clients N] [--requests N] \\
        [--schema xmark --schema gen:11 ...] [--source bench|exprgen] \\
        [--shards N] [--expect-coalescing] [--json report.json]
    python -m repro serve-bench [--shards N] [--json BENCH_serve.json]

``--dtd`` accepts a file of ``<!ELEMENT ...>`` declarations; the built-in
schemas are available as ``--builtin xmark|bib|paper-doc|paper-d1``.
Flag defaults for ``serve`` and ``loadgen`` are read from
:class:`repro.serve.ServeConfig` / :class:`repro.serve.LoadgenConfig`,
so ``--help`` cannot drift from the code (pinned by the argparse smoke
tests in ``tests/test_cli.py``).
"""

from __future__ import annotations

import argparse
import sys

from .analysis.baseline import baseline_analyze
from .analysis.explain import explain
from .analysis.independence import analyze
from .schema.catalog import (
    bib_dtd,
    paper_d1_dtd,
    paper_doc_dtd,
    xmark_dtd,
)
from .schema.dtd import DTD
from .schema.infer import infer_dtd
from .serve.loadgen import LoadgenConfig
from .serve.server import ANALYSIS_MODES, ServeConfig
from .xmldm.generator import generate_document
from .xmldm.parse import parse_xml
from .xmldm.serialize import serialize
from .xmldm.validate import ValidationError, validate

_BUILTINS = {
    "xmark": xmark_dtd,
    "bib": bib_dtd,
    "paper-doc": paper_doc_dtd,
    "paper-d1": paper_d1_dtd,
}


def _load_schema(args: argparse.Namespace) -> DTD:
    if getattr(args, "builtin", None):
        return _BUILTINS[args.builtin]()
    if not getattr(args, "dtd", None):
        raise SystemExit("error: pass --dtd FILE or --builtin NAME")
    with open(args.dtd, encoding="utf-8") as handle:
        text = handle.read()
    if not args.root:
        raise SystemExit("error: --root is required with --dtd")
    return DTD.from_dtd_text(args.root, text)


def _add_schema_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dtd", help="file of <!ELEMENT ...> declarations")
    parser.add_argument("--root", help="start symbol for --dtd")
    parser.add_argument("--builtin", choices=sorted(_BUILTINS),
                        help="use a built-in schema")


def _cmd_analyze(args: argparse.Namespace) -> int:
    schema = _load_schema(args)
    report = analyze(args.query, args.update, schema, k=args.k)
    if args.explain:
        print(explain(args.query, args.update, schema, report), end="")
    else:
        print(report)
    if args.types:
        baseline = baseline_analyze(args.query, args.update, schema)
        verdict = "independent" if baseline.independent else "dependent"
        overlap = f" (overlap: {sorted(baseline.overlap)})" \
            if baseline.overlap else ""
        print(f"type baseline [6]: {verdict}{overlap}")
    return 0 if report.independent else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    schema = _load_schema(args)
    with open(args.document, encoding="utf-8") as handle:
        tree = parse_xml(handle.read())
    try:
        validate(tree, schema)
    except ValidationError as error:
        print(f"INVALID: {error}")
        return 1
    print(f"valid ({tree.size()} nodes)")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    schema = _load_schema(args)
    tree = generate_document(schema, args.bytes, seed=args.seed)
    text = serialize(tree.store, tree.root, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out} ({tree.size()} nodes)")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_infer_dtd(args: argparse.Namespace) -> int:
    corpus = []
    for path in args.documents:
        with open(path, encoding="utf-8") as handle:
            corpus.append(parse_xml(handle.read()))
    from .schema.regex import Epsilon

    dtd = infer_dtd(corpus)
    for tag in sorted(dtd.rules):
        model = dtd.rules[tag]
        rendered = "EMPTY" if isinstance(model, Epsilon) else str(model)
        print(f"<!ELEMENT {tag} {rendered}>")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    import time
    from contextlib import ExitStack

    from .analysis.project import chain_keep_for_queries
    from .docstore.streamload import load_path
    from .storage import normalize_store_flags

    schema = _load_schema(args)
    keep = None
    if args.project:
        keep = chain_keep_for_queries(args.project, schema)
        if keep is None:
            print("warning: inferred chains too large to enumerate; "
                  "loading unprojected")
    started = time.perf_counter()
    result = load_path(args.document, keep=keep)
    seconds = time.perf_counter() - started
    print(f"loaded {args.document}: kept {result.nodes_kept:,}/"
          f"{result.nodes_seen:,} nodes ({result.kept_ratio:.1%}), "
          f"skipped {result.subtrees_skipped:,} subtrees, "
          f"{seconds * 1e3:.1f} ms"
          + (" [projected]" if keep is not None else ""))
    normalize_store_flags("", args.docstore or "",
                          doc_flag="--docstore")
    target = args.store or args.docstore
    if target:
        from .analysis.engine import schema_digest

        doc_id = args.doc or args.document
        with ExitStack() as stack:
            if args.store:
                from .storage import open_store

                documents = stack.enter_context(
                    open_store(args.store)
                ).documents
            else:
                # Legacy --docstore path: a documents-only SQLite file,
                # byte-compatible with what DocumentBackend produced.
                from .storage.sqlite import SqliteDocumentStore

                documents = stack.enter_context(
                    SqliteDocumentStore(args.docstore)
                )
            rows = documents.save(
                doc_id, result.tree, schema_digest(schema),
                nodes_seen=result.nodes_seen,
                subtrees_skipped=result.subtrees_skipped,
                # Same meta shape as the server's doc.load persistence:
                # recording project_for lets a later served reload
                # check that its queries are covered by the projection.
                meta={
                    "projected": keep is not None,
                    "project_for": list(args.project)
                    if keep is not None else None,
                },
            )
        print(f"persisted {rows:,} node rows as {doc_id!r} "
              f"in {target}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    """Answer a query on a *persisted* document, pushdown-first.

    Eligible queries run as SQL inside the store (no materialization:
    answers serialize straight from node-row range scans); queries
    outside the fragment fall back to materialize-then-evaluate.
    Answers print one per line on stdout; the mode/count summary goes
    to stderr so stdout stays pipeable.
    """
    from .docstore.pushdown import compile_query, serialize_answers
    from .storage import open_store
    from .xquery.parser import parse_query

    try:
        query = parse_query(args.query)
    except Exception as error:
        raise SystemExit(f"error: query does not parse: {error}") \
            from error
    with open_store(args.store) as backend:
        documents = backend.documents
        stored = documents.describe(args.doc)
        if stored is None:
            raise SystemExit(
                f"error: document {args.doc!r} is not persisted in "
                f"{args.store}"
            )
        # A persisted projection only answers the queries it was
        # projected for (same refusal the served doc.query op makes).
        recorded = stored.meta.get("project_for")
        if stored.meta.get("projected") and recorded is not None \
                and args.query not in set(recorded):
            raise SystemExit(
                f"error: document {args.doc!r} is projected for "
                f"{sorted(recorded)}, which does not cover this "
                "query; reload it from a source"
            )
        steps = compile_query(query)
        if steps is not None:
            locs = documents.run_steps(args.doc, steps)
            answers = serialize_answers(documents, args.doc, locs,
                                        args.limit)
            mode = "pushdown"
        else:
            from .xquery.ast import ROOT_VAR
            from .xquery.evaluator import evaluate_query

            tree, _ = documents.load(args.doc)
            locs = evaluate_query(query, tree.store,
                                  {ROOT_VAR: [tree.root]})
            take = locs if args.limit is None else locs[:args.limit]
            answers = [serialize(tree.store, loc) for loc in take]
            mode = "fallback"
    for answer in answers:
        print(answer)
    print(f"{len(locs)} answers ({mode}) from {args.doc!r}",
          file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Explain how a query over a persisted document would run.

    Builds the same :class:`~repro.obs.plan.PlanContext` the serving
    pipeline builds for ``doc.query`` -- pushdown compilation (the
    step chain and the exact parameterized SQL, or the ineligibility
    reason) plus the answer path -- without a serve loop, and renders
    it as an indented tree.  The query *is* answered (so the plan
    carries the real answer count), but answers are not printed; use
    ``repro query`` for those.
    """
    from .docstore.pushdown import compile_query_explain, step_label
    from .obs.plan import PlanContext, decision, render_plan
    from .storage import open_store
    from .xquery.parser import parse_query

    try:
        query = parse_query(args.query)
    except Exception as error:
        raise SystemExit(f"error: query does not parse: {error}") \
            from error
    plan = PlanContext()
    with open_store(args.store) as backend:
        documents = backend.documents
        stored = documents.describe(args.doc)
        if stored is None:
            raise SystemExit(
                f"error: document {args.doc!r} is not persisted in "
                f"{args.store}"
            )
        recorded = stored.meta.get("project_for")
        if stored.meta.get("projected") and recorded is not None \
                and args.query not in set(recorded):
            raise SystemExit(
                f"error: document {args.doc!r} is projected for "
                f"{sorted(recorded)}, which does not cover this "
                "query; reload it from a source"
            )
        steps, why = compile_query_explain(query)
        if steps is not None:
            explained = documents.explain_steps(args.doc, steps)
            decision("pushdown", "compiled", plan,
                     steps=[step_label(spec) for spec in steps],
                     **explained)
            locs = documents.run_steps(args.doc, steps)
            mode = "pushdown"
        else:
            from .xquery.ast import ROOT_VAR
            from .xquery.evaluator import evaluate_query

            decision("pushdown", "ineligible", plan, **(why or {}))
            tree, _ = documents.load(args.doc)
            locs = evaluate_query(query, tree.store,
                                  {ROOT_VAR: [tree.root]})
            mode = "fallback"
        decision("answer", mode, plan, doc=args.doc, count=len(locs))
    print(render_plan(plan.report()))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """One-shot scrape of a running service's metrics.

    ``HOST:PORT`` scrapes the wire ``metrics`` op over one JSON-lines
    connection; an ``http(s)://`` address fetches the Prometheus
    ``/metrics`` exposition instead (``/metrics`` is appended when the
    URL has no path).  Both shapes summarize identically: counters and
    gauges print their value, histograms their count and estimated
    p50/p99, sorted by series name.  ``--raw`` prints the exposition
    text verbatim instead.
    """
    import json as json_module

    from .obs.export import parse_exposition, render
    from .obs.metrics import histogram_quantile

    address = args.address
    if address.startswith(("http://", "https://")):
        from urllib.error import URLError
        from urllib.parse import urlsplit
        from urllib.request import urlopen

        if not urlsplit(address).path:
            address += "/metrics"
        try:
            with urlopen(address, timeout=args.timeout) as response:
                text = response.read().decode("utf-8")
        except (URLError, OSError) as error:
            raise SystemExit(f"error: scrape failed: {error}") from error
        snapshot = parse_exposition(text)
    else:
        import asyncio

        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise SystemExit(
                "error: address must be HOST:PORT or http(s)://..."
            )

        async def scrape():
            reader, writer = await asyncio.open_connection(
                host, int(port)
            )
            try:
                writer.write(json_module.dumps(
                    {"op": "metrics", "id": 1}
                ).encode("utf-8") + b"\n")
                await writer.drain()
                line = await reader.readline()
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except ConnectionError:
                    pass
            return json_module.loads(line)

        try:
            response = asyncio.run(
                asyncio.wait_for(scrape(), timeout=args.timeout)
            )
        except (ConnectionError, OSError, TimeoutError) as error:
            raise SystemExit(f"error: scrape failed: {error}") from error
        if not response.get("ok"):
            raise SystemExit(f"error: metrics op failed: {response}")
        snapshot = response["snapshot"]
        text = response.get("text") or render(snapshot)
    if args.raw:
        sys.stdout.write(text if text.endswith("\n") else text + "\n")
        return 0
    rows = []
    for name, family in sorted(snapshot.get("families", {}).items()):
        labelnames = list(family.get("labels", []))
        for key, child in sorted(family.get("children", {}).items()):
            values = json_module.loads(key)
            labels = ",".join(
                f"{n}={v}" for n, v in zip(labelnames, values)
            )
            series = f"{name}{{{labels}}}" if labels else name
            if family.get("kind") == "histogram":
                rows.append((
                    series,
                    f"count={child['count']}",
                    f"p50={histogram_quantile(child, 0.5):.6g}",
                    f"p99={histogram_quantile(child, 0.99):.6g}",
                ))
            else:
                value = child.get("value", 0)
                rows.append((series, f"value={value:g}", "", ""))
    if not rows:
        print("(no metrics)")
        return 0
    width = max(len(row[0]) for row in rows)
    for row in rows:
        tail = "  ".join(part for part in row[1:] if part)
        print(f"{row[0]:<{width}}  {tail}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench.harness import main as harness_main

    return harness_main([args.experiment])


def _cmd_bench_batch(args: argparse.Namespace) -> int:
    from .bench.batch import run_bench_batch

    results = run_bench_batch(
        n_queries=args.queries,
        n_updates=args.updates,
        processes=args.processes,
    )
    return 0 if results["verdicts_equal"] else 1


def _cmd_docstore_bench(args: argparse.Namespace) -> int:
    from .bench.docstore_bench import (
        append_trajectory_point,
        run_docstore_bench,
    )

    results = run_docstore_bench(
        target_bytes=args.bytes, seed=args.seed, repeats=args.repeats
    )
    if args.json:
        append_trajectory_point(args.json, results)
        print(f"appended trajectory point to {args.json}")
    return 0 if results["answers_identical"] else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json as json_module

    from .testkit.fuzz import FuzzConfig, run_fuzz

    if args.queries < 1 or args.updates < 1:
        raise SystemExit("error: --queries and --updates must be >= 1")
    if not 1 <= args.min_tags <= args.max_tags:
        raise SystemExit("error: need 1 <= --min-tags <= --max-tags")
    config = FuzzConfig(
        count=args.count,
        seed=args.seed,
        queries_per_schema=args.queries,
        updates_per_schema=args.updates,
        min_tags=args.min_tags,
        max_tags=args.max_tags,
        recursion_probability=args.recursion,
        expr_depth=args.depth,
        corpus_docs=args.docs,
        corpus_bytes=args.doc_bytes,
        processes=args.processes,
        shrink_budget=args.shrink_budget,
        corpus_dir=args.corpus_dir,
    )
    report = run_fuzz(config, progress=args.progress)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_json(), handle, indent=2,
                             sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 1 if report.counterexamples else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.server import run_service
    from .storage import normalize_store_flags

    normalize_store_flags(args.store, args.doc_store)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        store_path=args.store,
        doc_store_path=args.doc_store,
        batch_window=args.window / 1e3,
        max_batch=args.max_batch,
        analysis_mode=args.mode,
        max_schemas=args.max_schemas,
        max_documents=args.max_documents,
        pair_cache_size=args.pair_cache,
        preload=tuple(args.preload),
        shards=args.shards,
        slow_ms=args.slow_ms,
        slow_log_path=args.slow_log or "",
        metrics_port=args.metrics_port,
    )

    def ready(service, host, port):
        metrics = (f", metrics=:{service.metrics_port}"
                   if service.metrics_port else "")
        print(f"repro serve: listening on {host}:{port} "
              f"(mode={config.analysis_mode}, shards={config.shards}, "
              f"store={config.store_path}, window={args.window}ms"
              f"{metrics})",
              flush=True)

    try:
        asyncio.run(run_service(config, ready=ready))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json as json_module

    from .serve.loadgen import run_loadgen_sync

    kwargs = {}
    if args.schema:
        kwargs["schema"] = tuple(args.schema)
    # Omitting the kwarg keeps LoadgenConfig the single source of
    # truth for the default workload schema.
    report = run_loadgen_sync(LoadgenConfig(
        host=args.host,
        port=args.port,
        source=args.source,
        n_queries=args.queries,
        n_updates=args.updates,
        clients=args.clients,
        requests=args.requests,
        seed=args.seed,
        scrape_metrics=args.scrape_metrics,
        timing_sample=args.timing_sample,
        doc_queries=args.doc_queries,
        **kwargs,
    ))
    service = report["service"]
    print(f"loadgen: {report['completed']}/{report['workload']['requests']}"
          f" ok, {report['errors']} errors, "
          f"{report['throughput_rps']:.0f} req/s, "
          f"p50 {report['latency_ms']['p50']:.2f} ms, "
          f"p99 {report['latency_ms']['p99']:.2f} ms, "
          f"{service['batches']} batches "
          f"({service['coalesced_requests']} coalesced, "
          f"{service['shards']} shard(s))")
    server = report.get("server_metrics")
    if server is not None:
        analyze = server["per_op"].get("analyze", {})
        print(f"server ({server['role']}): analyze count "
              f"{analyze.get('count', 0)}, "
              f"p50 {analyze.get('p50_ms', 0.0):.2f} ms, "
              f"p99 {analyze.get('p99_ms', 0.0):.2f} ms, "
              f"counts_match={server['counts_match']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if report["errors"]:
        return 1
    if server is not None and not server["counts_match"]:
        print("error: --scrape-metrics, but the server's analyze "
              "histogram count does not match the requests sent "
              f"({analyze.get('count', 0)} vs "
              f"{report['workload']['requests']})")
        return 1
    if args.expect_coalescing and (
            not service["batches"] or not service["coalesced_requests"]):
        # batches alone is not enough: 600 one-entry batches would mean
        # the admission window coalesced nothing.
        print("error: --expect-coalescing, but no requests coalesced "
              f"({service['batches']} batches, "
              f"{service['coalesced_requests']} coalesced)")
        return 1
    if args.shards is not None:
        if service["shards"] != args.shards:
            print(f"error: --shards {args.shards}, but the service "
                  f"reports {service['shards']} shard(s)")
            return 1
        routing = service["shard_routing"] or {}
        busy = sum(1 for routed in routing.values() if routed > 0)
        if args.shards > 1 and busy < 2:
            print("error: --shards expects analyze traffic to spread, "
                  f"but only {busy} shard(s) received requests "
                  f"({routing})")
            return 1
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .bench.serve_bench import append_trajectory_point, run_serve_bench

    results = run_serve_bench(
        workload={"requests": args.requests, "clients": args.clients},
        batch_window=args.window / 1e3,
        shards=args.shards,
        store=args.store,
    )
    ok = results["verdicts_identical"] and \
        results.get("sharding", {}).get("verdicts_identical", True)
    if args.json:
        append_trajectory_point(args.json, results)
        print(f"appended trajectory point to {args.json}")
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Type-based XML query-update independence "
                    "(Bidoit, Colazzo, Ulliana, VLDB 2012)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze_cmd = commands.add_parser(
        "analyze", help="statically decide independence of a pair"
    )
    _add_schema_options(analyze_cmd)
    analyze_cmd.add_argument("--query", required=True)
    analyze_cmd.add_argument("--update", required=True)
    analyze_cmd.add_argument("--k", type=int, default=None,
                             help="override the derived multiplicity")
    analyze_cmd.add_argument("--explain", action="store_true",
                             help="print the chain-level explanation")
    analyze_cmd.add_argument("--types", action="store_true",
                             help="also run the type baseline [6]")
    analyze_cmd.set_defaults(func=_cmd_analyze)

    validate_cmd = commands.add_parser(
        "validate", help="validate a document against a DTD"
    )
    _add_schema_options(validate_cmd)
    validate_cmd.add_argument("document")
    validate_cmd.set_defaults(func=_cmd_validate)

    generate_cmd = commands.add_parser(
        "generate", help="generate a random valid document"
    )
    _add_schema_options(generate_cmd)
    generate_cmd.add_argument("--bytes", type=int, default=10_000)
    generate_cmd.add_argument("--seed", type=int, default=0)
    generate_cmd.add_argument("--out")
    generate_cmd.set_defaults(func=_cmd_generate)

    infer_cmd = commands.add_parser(
        "infer-dtd", help="infer a DTD from example documents"
    )
    infer_cmd.add_argument("documents", nargs="+")
    infer_cmd.set_defaults(func=_cmd_infer_dtd)

    load_cmd = commands.add_parser(
        "load",
        help="stream a document into the indexed store, optionally "
             "projected onto the chains of the queries that will run",
    )
    _add_schema_options(load_cmd)
    load_cmd.add_argument("document", help="XML file to load")
    load_cmd.add_argument("--project", action="append", default=[],
                          help="query whose inferred chains drive "
                               "projection pushdown (repeatable; the "
                               "union of chains is kept)")
    load_cmd.add_argument("--store", default=None,
                          help="persist the node table into this store "
                               "URL (memory://, sqlite:///docs.db, "
                               "postgresql://host/db; see "
                               "docs/STORAGE.md)")
    load_cmd.add_argument("--docstore",
                          help="deprecated: persist into this SQLite "
                               "document store path (use --store with "
                               "a store URL instead)")
    load_cmd.add_argument("--doc",
                          help="document id in the store (default: "
                               "the file path)")
    load_cmd.set_defaults(func=_cmd_load)

    query_cmd = commands.add_parser(
        "query",
        help="answer a query on a persisted document, pushed down as "
             "SQL when it fits the step fragment (no materialization)",
    )
    query_cmd.add_argument("query", help="query text, e.g. '//title'")
    query_cmd.add_argument("--store", required=True,
                           help="store URL (or SQLite path) holding "
                                "the persisted node table")
    query_cmd.add_argument("--doc", required=True,
                           help="document id in the store")
    query_cmd.add_argument("--limit", type=int, default=None,
                           help="serialize at most N answers (the "
                                "count still reflects all of them)")
    query_cmd.set_defaults(func=_cmd_query)

    explain_cmd = commands.add_parser(
        "explain",
        help="explain how a query over a persisted document would "
             "run: the compiled pushdown chain and its SQL, or the "
             "ineligibility reason, plus the answer path",
    )
    explain_cmd.add_argument("query", help="query text, e.g. '//title'")
    explain_cmd.add_argument("--store", required=True,
                             help="store URL (or SQLite path) holding "
                                  "the persisted node table")
    explain_cmd.add_argument("--doc", required=True,
                             help="document id in the store")
    explain_cmd.set_defaults(func=_cmd_explain)

    metrics_cmd = commands.add_parser(
        "metrics",
        help="one-shot scrape of a running service's metrics "
             "(HOST:PORT wire op, or an http(s):// /metrics URL)",
    )
    metrics_cmd.add_argument("address",
                             help="HOST:PORT for the wire metrics op, "
                                  "or http(s)://... for the HTTP "
                                  "exposition listener")
    metrics_cmd.add_argument("--raw", action="store_true",
                             help="print the Prometheus exposition "
                                  "text verbatim instead of the "
                                  "summary table")
    metrics_cmd.add_argument("--timeout", type=float, default=5.0,
                             help="scrape timeout, seconds")
    metrics_cmd.set_defaults(func=_cmd_metrics)

    bench_cmd = commands.add_parser(
        "bench", help="regenerate a Figure 3 panel"
    )
    bench_cmd.add_argument(
        "experiment", choices=["fig3a", "fig3b", "fig3c", "fig3d", "all"]
    )
    bench_cmd.set_defaults(func=_cmd_bench)

    batch_cmd = commands.add_parser(
        "bench-batch",
        help="amortized batch-engine analysis time vs one-shot analyze()",
    )
    batch_cmd.add_argument("--queries", type=int, default=10,
                           help="number of XMark benchmark views")
    batch_cmd.add_argument("--updates", type=int, default=10,
                           help="number of XMark benchmark updates")
    batch_cmd.add_argument("--processes", type=int, default=None,
                           help="also time a process-pool fan-out")
    batch_cmd.set_defaults(func=_cmd_bench_batch)

    docstore_bench_cmd = commands.add_parser(
        "docstore-bench",
        help="docstore acceptance numbers: dict store vs indexed vs "
             "indexed+projected on a generated ~100k-node document",
    )
    docstore_bench_cmd.add_argument(
        "--bytes", type=int, default=4_500_000,
        help="generator byte budget (~100k parsed nodes)")
    docstore_bench_cmd.add_argument("--seed", type=int, default=7)
    docstore_bench_cmd.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per query (median reported)")
    docstore_bench_cmd.add_argument(
        "--json",
        help="append a trajectory point to this file "
             "(BENCH_docstore.json)")
    docstore_bench_cmd.set_defaults(func=_cmd_docstore_bench)

    fuzz_cmd = commands.add_parser(
        "fuzz",
        help="differential fuzz: static vs baseline vs dynamic "
             "independence on random (schema, query, update) scenarios",
    )
    fuzz_cmd.add_argument("--count", type=int, default=500,
                          help="query x update pairs to examine")
    fuzz_cmd.add_argument("--seed", type=int, default=0,
                          help="campaign seed (fully deterministic)")
    fuzz_cmd.add_argument("--queries", type=int, default=4,
                          help="queries per generated schema")
    fuzz_cmd.add_argument("--updates", type=int, default=4,
                          help="updates per generated schema")
    fuzz_cmd.add_argument("--min-tags", type=int, default=3,
                          help="minimum schema alphabet size")
    fuzz_cmd.add_argument("--max-tags", type=int, default=7,
                          help="maximum schema alphabet size")
    fuzz_cmd.add_argument("--recursion", type=float, default=0.4,
                          help="probability a schema is recursive")
    fuzz_cmd.add_argument("--depth", type=int, default=2,
                          help="expression nesting depth")
    fuzz_cmd.add_argument("--docs", type=int, default=4,
                          help="corpus documents per scenario")
    fuzz_cmd.add_argument("--doc-bytes", type=int, default=700,
                          help="target bytes per corpus document")
    fuzz_cmd.add_argument("--processes", type=int, default=None,
                          help="fan the static matrix over a process pool")
    fuzz_cmd.add_argument("--shrink-budget", type=int, default=250,
                          help="differential re-checks per shrink")
    fuzz_cmd.add_argument("--json", help="write the JSON report here")
    fuzz_cmd.add_argument("--corpus-dir",
                          help="save shrunk counterexamples here "
                               "(e.g. tests/corpus)")
    fuzz_cmd.add_argument("--progress", action="store_true",
                          help="print progress every 10 scenarios")
    fuzz_cmd.set_defaults(func=_cmd_fuzz)

    # Serve/loadgen defaults come straight from the config dataclasses,
    # so the CLI surface cannot drift from the code (and the epilogs
    # below always quote the real values).  Pinned by the argparse
    # smoke tests in tests/test_cli.py.
    serve_defaults = ServeConfig()
    serve_cmd = commands.add_parser(
        "serve",
        help="run the concurrent independence service (JSON lines/TCP)",
        epilog="defaults: "
               f"window {serve_defaults.batch_window * 1e3:g} ms, "
               f"max-batch {serve_defaults.max_batch}, "
               f"max-schemas {serve_defaults.max_schemas}, "
               f"max-documents {serve_defaults.max_documents}, "
               f"shards {serve_defaults.shards}, store "
               f"{serve_defaults.store_path} (ephemeral). "
               "Wire reference: docs/PROTOCOL.md; architecture: "
               "docs/ARCHITECTURE.md; store URLs: docs/STORAGE.md.",
    )
    serve_cmd.add_argument("--host", default=serve_defaults.host)
    serve_cmd.add_argument("--port", type=int,
                           default=serve_defaults.port,
                           help="TCP port (0 picks a free one)")
    serve_cmd.add_argument("--store", default=serve_defaults.store_path,
                           help="store URL (memory://, "
                                "sqlite:///path.db, "
                                "postgresql://host/db) persisting "
                                "verdicts AND documents in one "
                                "backend; a plain SQLite path is the "
                                "deprecated verdicts-only spelling "
                                "(default: in-memory; with --shards, "
                                "the backend is shared by all shards; "
                                "see docs/STORAGE.md)")
    serve_cmd.add_argument("--doc-store",
                           default=serve_defaults.doc_store_path,
                           help="deprecated: separate SQLite document "
                                "store path (use one --store URL "
                                "instead); loaded documents persist as "
                                "node tables and survive restarts "
                                "without a re-parse "
                                "(default: disabled)")
    serve_cmd.add_argument("--window", type=float,
                           default=serve_defaults.batch_window * 1e3,
                           help="micro-batch admission window, ms")
    serve_cmd.add_argument("--max-batch", type=int,
                           default=serve_defaults.max_batch,
                           help="flush a window early at this many "
                                "requests")
    serve_cmd.add_argument("--mode", default=serve_defaults.analysis_mode,
                           choices=list(ANALYSIS_MODES),
                           help="analyze path: micro-batched (default), "
                                "shared engine without batching, or "
                                "stateless one-shot")
    serve_cmd.add_argument("--max-schemas", type=int,
                           default=serve_defaults.max_schemas,
                           help="LRU bound on registered schemas")
    serve_cmd.add_argument("--max-documents", type=int,
                           default=serve_defaults.max_documents,
                           help="LRU bound on loaded documents "
                                f"(default {serve_defaults.max_documents};"
                                " overflow evicts oldest)")
    serve_cmd.add_argument("--pair-cache", type=int,
                           default=serve_defaults.pair_cache_size,
                           help="per-engine pair-memo LRU bound")
    serve_cmd.add_argument("--shards", type=int,
                           default=serve_defaults.shards,
                           help="worker processes; requests route to "
                                "shards by schema-digest affinity "
                                "(1 = classic in-process service)")
    serve_cmd.add_argument("--preload", nargs="*", default=["xmark"],
                           help="builtin schemas to register at startup")
    serve_cmd.add_argument("--slow-ms", type=float,
                           default=serve_defaults.slow_ms,
                           help="record requests slower than this many "
                                "ms in the slow-request ring (0 = off); "
                                "see docs/OBSERVABILITY.md")
    serve_cmd.add_argument("--slow-log", default=None,
                           help="append slow requests as JSON lines to "
                                "this file (requires --slow-ms)")
    serve_cmd.add_argument("--metrics-port", type=int,
                           default=serve_defaults.metrics_port,
                           help="also serve Prometheus GET /metrics on "
                                "this HTTP port (0 = wire op only)")
    serve_cmd.set_defaults(func=_cmd_serve)

    loadgen_defaults = LoadgenConfig()
    loadgen_cmd = commands.add_parser(
        "loadgen",
        help="closed-loop load generator against a running service",
        epilog="defaults: "
               f"{loadgen_defaults.clients} clients, "
               f"{loadgen_defaults.requests} requests, "
               f"{loadgen_defaults.n_queries}x"
               f"{loadgen_defaults.n_updates} pools, schema "
               f"{loadgen_defaults.schema} ({loadgen_defaults.source}). "
               "Repeat --schema (builtins or gen:<seed>) for a "
               "multi-schema workload that exercises a sharded service.",
    )
    loadgen_cmd.add_argument("--host", default=loadgen_defaults.host)
    loadgen_cmd.add_argument("--port", type=int,
                             default=loadgen_defaults.port)
    loadgen_cmd.add_argument("--schema", action="append",
                             help="schema ref sent with requests; repeat "
                                  "for a multi-schema workload "
                                  "(builtin name or gen:<seed>; "
                                  f"default {loadgen_defaults.schema})")
    loadgen_cmd.add_argument("--source", default=loadgen_defaults.source,
                             choices=["bench", "exprgen"],
                             help="workload pool: paper benchmark "
                                  "views/updates (xmark only; other "
                                  "schemas fall back to exprgen) or "
                                  "schema-aware random expressions")
    loadgen_cmd.add_argument("--queries", type=int,
                             default=loadgen_defaults.n_queries,
                             help="query pool size per schema")
    loadgen_cmd.add_argument("--updates", type=int,
                             default=loadgen_defaults.n_updates,
                             help="update pool size per schema")
    loadgen_cmd.add_argument("--clients", type=int,
                             default=loadgen_defaults.clients,
                             help="concurrent closed-loop connections")
    loadgen_cmd.add_argument("--requests", type=int,
                             default=loadgen_defaults.requests,
                             help="total requests across all clients")
    loadgen_cmd.add_argument("--seed", type=int,
                             default=loadgen_defaults.seed)
    loadgen_cmd.add_argument("--json", help="write the full report here")
    loadgen_cmd.add_argument("--expect-coalescing", action="store_true",
                             help="fail unless the admission window "
                                  "actually coalesced requests: both "
                                  "batches > 0 and coalesced_requests "
                                  "> 0 after the run (CI smoke)")
    loadgen_cmd.add_argument("--shards", type=int, default=None,
                             help="fail unless the service reports this "
                                  "many shards and (for > 1) analyze "
                                  "traffic reached at least two of them")
    loadgen_cmd.add_argument("--scrape-metrics", action="store_true",
                             help="scrape the metrics op before/after "
                                  "the run, cross-check server-side "
                                  "histogram counts against the client "
                                  "request count, and report server "
                                  "percentiles")
    loadgen_cmd.add_argument("--timing-sample", type=int,
                             default=loadgen_defaults.timing_sample,
                             help="request a per-layer timing breakdown "
                                  "on every Nth request (0 = never)")
    loadgen_cmd.add_argument("--doc-queries", type=int,
                             default=loadgen_defaults.doc_queries,
                             help="extra doc.query requests per client "
                                  "against a shared generated document")
    loadgen_cmd.set_defaults(func=_cmd_loadgen)

    serve_bench_cmd = commands.add_parser(
        "serve-bench",
        help="serving acceptance numbers: batched vs unbatched modes, "
             "plus the sharded vs single-shard comparison",
    )
    serve_bench_cmd.add_argument("--requests", type=int, default=1200,
                                 help="requests per mode")
    serve_bench_cmd.add_argument("--clients", type=int, default=32)
    serve_bench_cmd.add_argument("--window", type=float, default=2.0,
                                 help="admission window, ms")
    serve_bench_cmd.add_argument("--shards", type=int, default=2,
                                 help="shard count for the sharding "
                                      "comparison (<= 1 skips it)")
    serve_bench_cmd.add_argument("--store", default=None,
                                 help="store URL to bench against "
                                      "(default: throwaway SQLite "
                                      "files per leg)")
    serve_bench_cmd.add_argument("--json",
                                 help="append a trajectory point to "
                                      "this file (BENCH_serve.json)")
    serve_bench_cmd.set_defaults(func=_cmd_serve_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
