"""A hand-crafted, schema-valid XMark document exercising every benchmark path.

Random generation rarely produces the deep optional paths the benchmark
expressions navigate (e.g. ``closed_auction/annotation/description/text/
keyword`` or the q15 ``parlist/listitem/parlist/listitem/text/emph/
keyword`` spine).  This document contains them all deterministically, so
dynamic ground-truth testing (Figure 3.b) has a witness for every
genuinely dependent pair.  It is validated against the XMark DTD in the
test suite.
"""

from __future__ import annotations

from functools import lru_cache

from ..xmldm.parse import parse_xml
from ..xmldm.store import Tree

RICH_XMARK_XML = """
<site>
  <regions>
    <africa>
      <item>
        <location>Cairo</location><quantity>1</quantity>
        <name>mask</name><payment>cash</payment>
        <description><text>carved <keyword>wood</keyword> with
          <bold>dark</bold> tone</text></description>
        <shipping>air</shipping><incategory/>
        <mailbox><mail><from>ann</from><to>bob</to><date>d1</date>
          <text>offer <keyword>urgent</keyword></text></mail></mailbox>
      </item>
      <item>
        <location>Lagos</location><quantity>2</quantity>
        <name>drum</name><payment>check</payment>
        <description><parlist><listitem><text>skin</text></listitem>
        </parlist></description>
        <shipping>sea</shipping><incategory/><incategory/>
        <mailbox/>
      </item>
    </africa>
    <asia><item>
      <location>Kyoto</location><quantity>1</quantity>
      <name>fan</name><payment>card</payment>
      <description><text>silk</text></description>
      <shipping>air</shipping><incategory/>
      <mailbox/>
    </item></asia>
    <australia><item>
      <location>Perth</location><quantity>3</quantity>
      <name>boomerang</name><payment>cash</payment>
      <description><text>returns <emph>fast</emph></text></description>
      <shipping>sea</shipping><incategory/>
      <mailbox/>
    </item></australia>
    <europe><item>
      <location>Oslo</location><quantity>1</quantity>
      <name>sled</name><payment>card</payment>
      <description><text>pine</text></description>
      <shipping>rail</shipping><incategory/>
      <mailbox/>
    </item></europe>
    <namerica><item>
      <location>Boston</location><quantity>2</quantity>
      <name>lamp</name><payment>cash</payment>
      <description><text>brass</text></description>
      <shipping>air</shipping><incategory/>
      <mailbox/>
    </item></namerica>
    <samerica><item>
      <location>Lima</location><quantity>1</quantity>
      <name>rug</name><payment>check</payment>
      <description><text>wool</text></description>
      <shipping>sea</shipping><incategory/>
      <mailbox/>
    </item></samerica>
  </regions>
  <categories>
    <category><name>crafts</name>
      <description><parlist>
        <listitem><text>hand <keyword>made</keyword></text></listitem>
        <listitem><parlist><listitem><text><emph>rare
          <keyword>find</keyword></emph></text></listitem></parlist>
        </listitem>
      </parlist></description>
    </category>
    <category><name>tools</name>
      <description><text>practical</text></description>
    </category>
  </categories>
  <catgraph><edge/><edge/></catgraph>
  <people>
    <person>
      <name>Alice</name><emailaddress>a@x</emailaddress>
      <phone>555-1</phone>
      <address><street>1 Elm</street><city>Ens</city>
        <country>NL</country><province>OV</province>
        <zipcode>7500</zipcode></address>
      <homepage>http://a</homepage><creditcard>1111</creditcard>
      <profile><interest/><interest/><education>phd</education>
        <gender>f</gender><business>yes</business><age>33</age>
      </profile>
      <watches><watch/><watch/></watches>
    </person>
    <person>
      <name>Bob</name><emailaddress>b@x</emailaddress>
    </person>
    <person>
      <name>Carol</name><emailaddress>c@x</emailaddress>
      <phone>555-2</phone>
      <profile><business>no</business></profile>
    </person>
  </people>
  <open_auctions>
    <open_auction>
      <initial>10</initial><reserve>20</reserve>
      <bidder><date>d1</date><time>t1</time><personref/>
        <increase>1</increase></bidder>
      <bidder><date>d2</date><time>t2</time><personref/>
        <increase>2</increase></bidder>
      <bidder><date>d3</date><time>t3</time><personref/>
        <increase>3</increase></bidder>
      <current>13</current><privacy>yes</privacy><itemref/>
      <seller/>
      <annotation><author/>
        <description><text>mint <bold>condition</bold>
          <keyword>hot</keyword></text></description>
        <happiness>9</happiness></annotation>
      <quantity>1</quantity><type>regular</type>
      <interval><start>s1</start><end>e1</end></interval>
    </open_auction>
    <open_auction>
      <initial>5</initial>
      <current>5</current><itemref/>
      <seller/>
      <annotation><author/><happiness>5</happiness></annotation>
      <quantity>2</quantity><type>featured</type>
      <interval><start>s2</start><end>e2</end></interval>
    </open_auction>
  </open_auctions>
  <closed_auctions>
    <closed_auction>
      <seller/><buyer/><itemref/>
      <price>42</price><date>d9</date><quantity>1</quantity>
      <type>regular</type>
      <annotation><author/>
        <description><text>sold <keyword>fast</keyword> and
          <emph>high</emph></text></description>
        <happiness>8</happiness></annotation>
    </closed_auction>
    <closed_auction>
      <seller/><buyer/><itemref/>
      <price>7</price><date>d10</date><quantity>3</quantity>
      <type>featured</type>
      <annotation><author/>
        <description><parlist>
          <listitem><parlist><listitem><text><emph>deep
            <keyword>spine</keyword></emph></text></listitem></parlist>
          </listitem>
          <listitem><text>flat</text></listitem>
        </parlist></description>
        <happiness>6</happiness></annotation>
    </closed_auction>
  </closed_auctions>
</site>
"""


@lru_cache(maxsize=None)
def rich_xmark_tree() -> Tree:
    """The parsed rich document (cached; callers must clone before mutating)."""
    return parse_xml(RICH_XMARK_XML)


def rich_xmark_document() -> Tree:
    """A fresh mutable copy of the rich document."""
    return rich_xmark_tree().clone()
