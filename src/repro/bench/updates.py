"""The 31 benchmark updates (Section 6.2).

* ``UA1``-``UA8``: ``delete Ai`` (XPathMark downward paths);
* ``UB1``-``UB8``: ``delete Bi`` (upward/horizontal paths);
* ``UI1``-``UI5``: insert expressions;
* ``UN1``-``UN5``: rename expressions;
* ``UP1``-``UP5``: replace expressions.

As in the paper, the UI/UN/UP groups are chosen to cover all different
parts of XMark documents, in particular the mutually recursive
``description`` component (``text``/``bold``/``keyword``/``emph`` and
``parlist``/``listitem``), and to preserve document validity (renames
stay within the interchangeable text-decoration types; replaces produce
content matching the content models).
"""

from __future__ import annotations

from functools import lru_cache

from ..xupdate.ast import Update
from ..xupdate.parser import parse_update
from .views import XPATHMARK_A_VIEWS, XPATHMARK_B_VIEWS

#: Delete updates derived from the XPathMark views, as in [6].
DELETE_UPDATES: dict[str, str] = {
    **{f"UA{i}": f"delete {path}"
       for i, path in ((n[1:], XPATHMARK_A_VIEWS[n]) for n in
                       XPATHMARK_A_VIEWS)},
    **{f"UB{i}": f"delete {path}"
       for i, path in ((n[1:], XPATHMARK_B_VIEWS[n]) for n in
                       XPATHMARK_B_VIEWS)},
}

INSERT_UPDATES: dict[str, str] = {
    "UI1": (
        "for $x in /site/people/person/profile return "
        "insert <interest/> as first into $x"
    ),
    "UI2": (
        "for $x in /site/open_auctions/open_auction return "
        "insert <bidder><date>d</date><time>t</time><personref/>"
        "<increase>i</increase></bidder> into $x"
    ),
    "UI3": (
        "for $x in //text return "
        "insert <keyword><bold>hot</bold></keyword> into $x"
    ),
    "UI4": (
        "for $x in //parlist return "
        "insert <listitem><text>t</text></listitem> into $x"
    ),
    "UI5": (
        "for $x in /site/regions/*/item/mailbox return "
        "insert <mail><from>a</from><to>b</to><date>d</date>"
        "<text>t</text></mail> into $x"
    ),
}

RENAME_UPDATES: dict[str, str] = {
    "UN1": "for $x in //bold return rename $x as emph",
    "UN2": "for $x in //text/keyword return rename $x as emph",
    "UN3": "for $x in //listitem/text/bold return rename $x as keyword",
    "UN4": (
        "for $x in /site/closed_auctions/closed_auction/annotation/"
        "description/text/emph return rename $x as bold"
    ),
    "UN5": (
        "for $x in /site/regions/*/item/mailbox/mail/text/keyword "
        "return rename $x as bold"
    ),
}

REPLACE_UPDATES: dict[str, str] = {
    "UP1": (
        "for $x in /site/people/person/address return replace $x with "
        "<address><street>s</street><city>c</city><country>y</country>"
        "<zipcode>z</zipcode></address>"
    ),
    "UP2": (
        "for $x in /site/open_auctions/open_auction/interval return "
        "replace $x with <interval><start>s</start><end>e</end></interval>"
    ),
    "UP3": (
        "for $x in /site/categories/category/description return "
        "replace $x with <description><text>plain</text></description>"
    ),
    "UP4": (
        "for $x in /site/regions/*/item/payment return "
        "replace $x with <payment>cash</payment>"
    ),
    "UP5": (
        "for $x in /site/closed_auctions/closed_auction/price return "
        "replace $x with <price>0</price>"
    ),
}

#: All 31 updates in benchmark order (UA, UB, UI, UN, UP).
ALL_UPDATES: dict[str, str] = {
    **DELETE_UPDATES,
    **INSERT_UPDATES,
    **RENAME_UPDATES,
    **REPLACE_UPDATES,
}


def update_names() -> list[str]:
    """The 31 update names in benchmark order."""
    return list(ALL_UPDATES)


@lru_cache(maxsize=None)
def update(name: str) -> Update:
    """Parsed AST of an update (cached)."""
    return parse_update(ALL_UPDATES[name])


def parsed_updates() -> dict[str, Update]:
    """All updates, parsed."""
    return {name: update(name) for name in ALL_UPDATES}
