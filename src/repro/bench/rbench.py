"""The R-benchmark (Section 6.2): scalability under massive recursion.

* ``dn``: a parametric schema of ``n`` fully mutually recursive types
  (every type's content model is ``(a1 | ... | an)*``), so ``|dn| = n``;
* ``em``: an XPath expression of ``m`` consecutive
  ``descendant::node()`` steps, so ``|em| = m``;
* multiplicities ``k`` ranging over ``{m, m+5, m+10}``.

The paper sweeps ``n in {1, 3, 5, 10, 20}`` and ``m in {1, 5, 10}`` and
measures pure chain-inference time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..schema.dtd import DTD
from ..xquery.ast import ROOT_VAR, Query
from ..xquery.parser import parse_query
from .. import analysis
from ..analysis.cdag import Universe
from ..analysis.infer_query import QueryInference

#: The paper's parameter grid.
SCHEMA_SIZES = (1, 3, 5, 10, 20)
PATH_LENGTHS = (1, 5, 10)
K_OFFSETS = (0, 5, 10)


def recursive_schema(n: int) -> DTD:
    """``dn``: ``n`` fully mutually recursive types, rooted at ``a1``.

    >>> recursive_schema(2).children_of("a1") == frozenset({"a1", "a2"})
    True
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    names = [f"a{i}" for i in range(1, n + 1)]
    body = "(" + " | ".join(names) + ")*"
    return DTD.from_dict(names[0], {name: body for name in names})


def descendant_path(m: int) -> Query:
    """``em``: ``m`` consecutive ``descendant::node()`` steps."""
    if m < 1:
        raise ValueError("m must be at least 1")
    return parse_query("/descendant::node()" * m)


@dataclass(frozen=True)
class RBenchPoint:
    """One measured configuration of Figure 3.d."""

    n: int | str          # schema size, or "xmark"
    m: int                # path length
    k: int                # multiplicity bound used
    seconds: float


def infer_time(schema: DTD, m: int, k: int) -> float:
    """Chain-inference time for ``em`` over ``schema`` with bound ``k``."""
    query = descendant_path(m)
    universe = Universe(schema, analysis.depth_cap_for(schema, k))
    engine = QueryInference(universe)
    started = time.perf_counter()
    engine.infer_root(query, ROOT_VAR)
    return time.perf_counter() - started


def sweep(
    schema_sizes: tuple[int, ...] = SCHEMA_SIZES,
    path_lengths: tuple[int, ...] = PATH_LENGTHS,
    k_offsets: tuple[int, ...] = K_OFFSETS,
    include_xmark: bool = True,
) -> list[RBenchPoint]:
    """Run the full Figure 3.d sweep and return all measured points."""
    from ..schema.catalog import xmark_dtd

    points: list[RBenchPoint] = []
    for n in schema_sizes:
        schema = recursive_schema(n)
        for m in path_lengths:
            for offset in k_offsets:
                k = m + offset
                points.append(
                    RBenchPoint(n, m, k, infer_time(schema, m, k))
                )
    if include_xmark:
        schema = xmark_dtd()
        for m in path_lengths:
            for offset in k_offsets:
                k = m + offset
                points.append(
                    RBenchPoint("xmark", m, k, infer_time(schema, m, k))
                )
    return points
