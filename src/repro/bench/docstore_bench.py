"""Document-store acceptance numbers: dict store vs indexed vs
indexed+projected.

One generated ~100k-node XMark document is pushed through three
loading/evaluation stacks:

* ``dict`` -- :func:`repro.xmldm.parse.parse_xml` into the Section-2
  dict store, generic evaluation (the pre-docstore baseline);
* ``indexed`` -- :func:`repro.docstore.streamload.load_xml` into the
  interval-encoded store, axis-accelerated evaluation;
* ``projected`` -- per query, a *projected* load driven by the query's
  inferred chains (:func:`repro.analysis.project.chain_keep_for_query`)
  followed by evaluation on ``t|L``.

For every query the three answer sequences must serialize
byte-identically (Theorem 3.2 made operational); the gate in
``benchmarks/test_docstore_gate.py`` additionally requires projected
loads to keep <= 25% of nodes on the chain-selective pool and the
accelerated descendant-axis queries to beat the dict-store walk by
>= 3x.  ``repro docstore-bench --json BENCH_docstore.json`` appends a
trajectory point.

A fourth, *cold-start* leg persists the indexed corpus into a SQLite
node table and measures first-query latency on a fresh connection two
ways: SQL pushdown (:mod:`repro.docstore.pushdown` -- the query runs
inside the database and answers serialize from row range scans, no
materialization) versus materialize-then-evaluate.  The gate requires
pushdown to win by >= 5x with byte-identical answers.
"""

from __future__ import annotations

import os
import statistics
import sys
import tempfile
import time

from ..analysis.project import chain_keep_for_query
from ..docstore.pushdown import compile_query, serialize_answers
from ..docstore.streamload import load_xml
from ..schema.catalog import xmark_dtd
from ..xmldm.generator import generate_document
from ..xmldm.parse import parse_xml
from ..xmldm.serialize import serialize
from ..xquery.ast import ROOT_VAR
from ..xquery.evaluator import evaluate_query
from ..xquery.parser import parse_query
from .serve_bench import append_trajectory_point

#: The benchmark query pool.  ``descendant`` entries exercise the
#: interval-index range scans (the >= 3x gate); ``selective`` entries
#: are chain-selective enough that projection must keep <= 25%.
BENCH_QUERIES: tuple[tuple[str, str, frozenset[str]], ...] = (
    ("q1", "/site/people/person/name", frozenset({"selective"})),
    ("q5", "/site/closed_auctions/closed_auction/price",
     frozenset({"selective"})),
    # q6 returns whole ``item`` subtrees, so its keep ratio tracks the
    # answer mass -- descendant-accelerated but not chain-selective.
    ("q6", "/site/regions//item", frozenset({"descendant"})),
    ("emails", "//emailaddress",
     frozenset({"descendant", "selective"})),
    ("person-names", "//person/name",
     frozenset({"descendant", "selective"})),
    ("increases", "//open_auction/bidder/increase",
     frozenset({"descendant", "selective"})),
    ("guarded", "for $a in /site/open_auctions/open_auction return "
                "if ($a/bidder/increase) then $a/current else ()",
     frozenset({"selective"})),
    ("all-text", "//text()", frozenset({"descendant"})),
)


def _answers_digest(store, answers) -> str:
    """A canonical rendering of an answer sequence (order included)."""
    return "\x1e".join(serialize(store, loc) for loc in answers)


def _median_seconds(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


#: The cold-start query: pushdown-eligible, selective, and the same
#: ``//emailaddress`` shape the hot-path bench already tracks.
COLD_START_QUERY = "//emailaddress"


def _cold_start_leg(indexed, say) -> dict:
    """Persist the corpus, then race first-query-on-a-fresh-connection:
    SQL pushdown vs materialize-then-evaluate.

    Both sides pay the connection open; the pushdown side answers with
    one SQL query plus per-answer row range scans (the document is
    never rebuilt in memory), the materialize side re-materializes all
    rows and evaluates in memory -- the cost the pushdown exists to
    avoid on restart.
    """
    from ..storage.sqlite import SqliteDocumentStore

    query = parse_query(COLD_START_QUERY)
    reference = [
        serialize(indexed.store, loc)
        for loc in evaluate_query(query, indexed.store,
                                  {ROOT_VAR: [indexed.root]})
    ]
    steps = compile_query(query)
    assert steps is not None, "cold-start query must be pushdown-eligible"
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "corpus.db")
        store = SqliteDocumentStore(path)
        started = time.perf_counter()
        store.save("corpus", indexed, "bench")
        save_seconds = time.perf_counter() - started
        store.close()

        started = time.perf_counter()
        fresh = SqliteDocumentStore(path)
        locs = fresh.run_steps("corpus", steps)
        pushdown_answers = serialize_answers(fresh, "corpus", locs)
        pushdown_seconds = time.perf_counter() - started
        fresh.close()

        started = time.perf_counter()
        fresh = SqliteDocumentStore(path)
        tree, _ = fresh.load("corpus")
        materialized_answers = [
            serialize(tree.store, loc)
            for loc in evaluate_query(query, tree.store,
                                      {ROOT_VAR: [tree.root]})
        ]
        materialize_seconds = time.perf_counter() - started
        fresh.close()

    identical = pushdown_answers == materialized_answers == reference
    cold = {
        "query": COLD_START_QUERY,
        "answers": len(pushdown_answers),
        "answers_identical": identical,
        "save_ms": save_seconds * 1e3,
        "pushdown_ms": pushdown_seconds * 1e3,
        "materialize_ms": materialize_seconds * 1e3,
        "speedup": materialize_seconds / pushdown_seconds
        if pushdown_seconds else float("inf"),
    }
    say(f"cold start ({COLD_START_QUERY}): pushdown "
        f"{cold['pushdown_ms']:.2f}ms vs materialize "
        f"{cold['materialize_ms']:.2f}ms ({cold['speedup']:.1f}x), "
        f"{cold['answers']} answers"
        + ("" if identical else "  ANSWERS DIFFER"))
    return cold


def run_docstore_bench(target_bytes: int = 4_500_000, seed: int = 7,
                       repeats: int = 3, out=sys.stdout) -> dict:
    """Run the three-stack comparison; returns the results dict."""

    def say(message: str) -> None:
        if out is not None:
            print(message, file=out, flush=True)

    schema = xmark_dtd()
    say(f"generating XMark document (~{target_bytes:,} bytes, "
        f"seed {seed})...")
    generated = generate_document(schema, target_bytes, seed=seed)
    text = serialize(generated.store, generated.root)

    started = time.perf_counter()
    dict_tree = parse_xml(text)
    dict_load = time.perf_counter() - started
    nodes = dict_tree.size()

    started = time.perf_counter()
    indexed = load_xml(text).tree
    indexed_load = time.perf_counter() - started
    say(f"document: {nodes:,} nodes; dict parse {dict_load:.2f}s, "
        f"indexed load {indexed_load:.2f}s")

    queries = []
    answers_identical = True
    for name, source, kinds in BENCH_QUERIES:
        query = parse_query(source)

        def run_dict():
            return evaluate_query(query, dict_tree.store,
                                  {ROOT_VAR: [dict_tree.root]})

        def run_indexed():
            return evaluate_query(query, indexed.store,
                                  {ROOT_VAR: [indexed.root]})

        dict_answers = run_dict()
        indexed_answers = run_indexed()  # warms the rank index
        dict_seconds = _median_seconds(run_dict, repeats)
        indexed_seconds = _median_seconds(run_indexed, repeats)

        keep = chain_keep_for_query(source, schema)
        started = time.perf_counter()
        projected_result = load_xml(text, keep=keep)
        projected_load = time.perf_counter() - started
        projected_tree = projected_result.tree

        def run_projected():
            return evaluate_query(
                query, projected_tree.store,
                {ROOT_VAR: [projected_tree.root]},
            )

        projected_answers = run_projected()
        projected_seconds = _median_seconds(run_projected, repeats)

        reference = _answers_digest(dict_tree.store, dict_answers)
        identical = (
            _answers_digest(indexed.store, indexed_answers) == reference
            and _answers_digest(projected_tree.store,
                                projected_answers) == reference
        )
        answers_identical &= identical
        entry = {
            "name": name,
            "query": source,
            "kinds": sorted(kinds),
            "answers": len(dict_answers),
            "answers_identical": identical,
            "dict_ms": dict_seconds * 1e3,
            "indexed_ms": indexed_seconds * 1e3,
            "projected_ms": projected_seconds * 1e3,
            "projected_load_ms": projected_load * 1e3,
            "speedup": dict_seconds / indexed_seconds
            if indexed_seconds else float("inf"),
            "nodes_kept": projected_result.nodes_kept,
            "kept_ratio": projected_result.nodes_kept / nodes,
            "subtrees_skipped": projected_result.subtrees_skipped,
        }
        queries.append(entry)
        say(f"  {name:13s} dict {entry['dict_ms']:8.2f}ms  indexed "
            f"{entry['indexed_ms']:7.2f}ms ({entry['speedup']:6.1f}x)  "
            f"kept {entry['kept_ratio']:6.1%}  "
            f"answers {entry['answers']}"
            + ("" if identical else "  ANSWERS DIFFER"))

    cold = _cold_start_leg(indexed, say)

    descendant = [q for q in queries if "descendant" in q["kinds"]]
    selective = [q for q in queries if "selective" in q["kinds"]]
    results = {
        "bench": "docstore",
        "target_bytes": target_bytes,
        "seed": seed,
        "repeats": repeats,
        "nodes": nodes,
        "dict_load_seconds": dict_load,
        "indexed_load_seconds": indexed_load,
        "answers_identical": answers_identical,
        "min_descendant_speedup": min(q["speedup"] for q in descendant),
        "max_selective_kept_ratio": max(
            q["kept_ratio"] for q in selective
        ),
        "peak_nodes_kept": max(q["nodes_kept"] for q in selective),
        "cold_start": cold,
        "queries": queries,
    }
    say(f"descendant-axis speedup >= "
        f"{results['min_descendant_speedup']:.1f}x; selective "
        f"projections keep <= "
        f"{results['max_selective_kept_ratio']:.1%} of {nodes:,} nodes; "
        f"answers {'identical' if answers_identical else 'DIFFER'}")
    return results


__all__ = ["BENCH_QUERIES", "append_trajectory_point",
           "run_docstore_bench"]
