"""Benchmark workloads and the Figure 3 experiment harness."""

from .harness import (
    GROUND_TRUTH_CORPUS,
    MAINTENANCE_SCALES,
    PairGrid,
    compute_grid,
    compute_ground_truth,
    run_fig3a,
    run_fig3b,
    run_fig3c,
    run_fig3d,
)
from .rbench import (
    K_OFFSETS,
    PATH_LENGTHS,
    SCHEMA_SIZES,
    RBenchPoint,
    descendant_path,
    infer_time,
    recursive_schema,
    sweep,
)
from .updates import ALL_UPDATES, parsed_updates, update, update_names
from .views import (
    ALL_VIEWS,
    XMARK_VIEWS,
    XPATHMARK_A_VIEWS,
    XPATHMARK_B_VIEWS,
    parsed_views,
    view,
    view_names,
)

__all__ = [
    "GROUND_TRUTH_CORPUS",
    "MAINTENANCE_SCALES",
    "PairGrid",
    "compute_grid",
    "compute_ground_truth",
    "run_fig3a",
    "run_fig3b",
    "run_fig3c",
    "run_fig3d",
    "K_OFFSETS",
    "PATH_LENGTHS",
    "SCHEMA_SIZES",
    "RBenchPoint",
    "descendant_path",
    "infer_time",
    "recursive_schema",
    "sweep",
    "ALL_UPDATES",
    "parsed_updates",
    "update",
    "update_names",
    "ALL_VIEWS",
    "XMARK_VIEWS",
    "XPATHMARK_A_VIEWS",
    "XPATHMARK_B_VIEWS",
    "parsed_views",
    "view",
    "view_names",
]
