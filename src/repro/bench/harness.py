"""Experiment harness regenerating every panel of the paper's Figure 3.

Run as a module::

    python -m repro.bench.harness fig3a     # static-analysis time
    python -m repro.bench.harness fig3b     # precision vs the type baseline
    python -m repro.bench.harness fig3c     # view-maintenance savings
    python -m repro.bench.harness fig3d     # R-benchmark scalability
    python -m repro.bench.harness all

Substitutions w.r.t. the paper's testbed (see DESIGN.md section 5): the
document corpus comes from our generator instead of xmlgen; the three
commercial XQuery engines of Fig 3.c are replaced by this library's
evaluator at three document scales; ground truth for Fig 3.b comes from
exhaustive dynamic testing instead of manual determination.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass

from ..analysis.baseline import baseline_analyze
from ..analysis.dynamic import differs_on
from ..analysis.engine import AnalysisEngine
from ..schema.catalog import xmark_dtd
from ..xmldm.generator import document_bytes, generate_corpus, generate_document
from ..xquery.ast import ROOT_VAR
from ..xquery.evaluator import evaluate_query
from .rbench import sweep
from .updates import parsed_updates, update_names
from .views import parsed_views, view_names
from .xmark_data import rich_xmark_document

#: Corpus used for dynamic ground truth (count, bytes-per-document).
GROUND_TRUTH_CORPUS = (8, 6_000)

#: Document scales for the maintenance experiment, substituting the
#: paper's 1 MB / 10 MB / 100 MB (Python evaluator vs compiled engines).
MAINTENANCE_SCALES = (("S", 50_000), ("M", 200_000), ("L", 800_000))


@dataclass
class PairGrid:
    """Static verdicts and timings for every (update, view) pair."""

    chains_independent: dict[tuple[str, str], bool]
    types_independent: dict[tuple[str, str], bool]
    chains_seconds: dict[str, float]      # per update, all 36 views
    types_seconds: dict[str, float]


def compute_grid(schema=None, engine: AnalysisEngine | None = None
                 ) -> PairGrid:
    """Run both static analyses on the full 31 x 36 benchmark grid.

    One batch engine serves every pair: the k-indexed universes and the
    per-expression chain inferences are computed once and shared across
    the grid (the engine derives ``k = k_q + k_u`` per pair).
    """
    schema = schema or xmark_dtd()
    views = parsed_views()
    updates = parsed_updates()
    if engine is None:
        engine = AnalysisEngine(schema)

    chains_ind: dict[tuple[str, str], bool] = {}
    types_ind: dict[tuple[str, str], bool] = {}
    chains_sec: dict[str, float] = {}
    types_sec: dict[str, float] = {}

    for update_name, update in updates.items():
        started = time.perf_counter()
        reports = engine.analyze_many(
            (view, update) for view in views.values()
        )
        for view_name, report in zip(views, reports):
            chains_ind[(update_name, view_name)] = report.independent
        chains_sec[update_name] = time.perf_counter() - started

        started = time.perf_counter()
        for view_name, view in views.items():
            verdict = baseline_analyze(view, update, schema)
            types_ind[(update_name, view_name)] = verdict.independent
        types_sec[update_name] = time.perf_counter() - started

    return PairGrid(chains_ind, types_ind, chains_sec, types_sec)


def compute_ground_truth(
    corpus_size: int | None = None,
    document_bytes_target: int | None = None,
    seed: int = 0,
) -> dict[tuple[str, str], bool]:
    """Dynamic ground truth: pair -> truly independent (no witness found)."""
    count, target = GROUND_TRUTH_CORPUS
    if corpus_size is not None:
        count = corpus_size
    if document_bytes_target is not None:
        target = document_bytes_target
    schema = xmark_dtd()
    corpus = [rich_xmark_document()] + generate_corpus(
        schema, count, target_bytes=target, seed=seed
    )
    views = parsed_views()
    updates = parsed_updates()
    truth: dict[tuple[str, str], bool] = {}
    for update_name, update in updates.items():
        for view_name, view in views.items():
            independent = True
            for tree in corpus:
                if differs_on(view, update, tree):
                    independent = False
                    break
            truth[(update_name, view_name)] = independent
    return truth


# ---------------------------------------------------------------------------
# Figure 3.a -- static analysis time
# ---------------------------------------------------------------------------


def run_fig3a(out=sys.stdout) -> PairGrid:
    """Per update: time to analyze the whole 36-view set (chains and [6])."""
    grid = compute_grid()
    print("Figure 3.a -- chain analysis time per update "
          "(all 36 views), ms", file=out)
    print(f"{'update':>6} {'chains-ms':>10} {'types[6]-ms':>12}", file=out)
    for name in update_names():
        print(
            f"{name:>6} {grid.chains_seconds[name] * 1e3:>10.1f} "
            f"{grid.types_seconds[name] * 1e3:>12.1f}",
            file=out,
        )
    chain_avg = sum(grid.chains_seconds.values()) / len(grid.chains_seconds)
    type_avg = sum(grid.types_seconds.values()) / len(grid.types_seconds)
    print(f"{'avg':>6} {chain_avg * 1e3:>10.1f} {type_avg * 1e3:>12.1f}",
          file=out)
    return grid


# ---------------------------------------------------------------------------
# Figure 3.b -- precision
# ---------------------------------------------------------------------------


def run_fig3b(grid: PairGrid | None = None,
              truth: dict[tuple[str, str], bool] | None = None,
              out=sys.stdout) -> dict[str, tuple[float, float]]:
    """Per update: % of truly independent views detected (chains vs [6]).

    Returns ``{update: (chains_pct, types_pct)}`` with NaN-free semantics:
    updates with no truly-independent view count as 100% for both.
    """
    grid = grid or compute_grid()
    truth = truth or compute_ground_truth()
    print("Figure 3.b -- independence detected (% of truly independent "
          "pairs)", file=out)
    print(f"{'update':>6} {'true-indep':>10} {'chains%':>8} "
          f"{'types[6]%':>10}", file=out)
    results: dict[str, tuple[float, float]] = {}
    chain_pcts: list[float] = []
    type_pcts: list[float] = []
    for update_name in update_names():
        independent_views = [
            v for v in view_names() if truth[(update_name, v)]
        ]
        total = len(independent_views)
        if total == 0:
            results[update_name] = (100.0, 100.0)
            continue
        chains_hit = sum(
            1 for v in independent_views
            if grid.chains_independent[(update_name, v)]
        )
        types_hit = sum(
            1 for v in independent_views
            if grid.types_independent[(update_name, v)]
        )
        chains_pct = 100.0 * chains_hit / total
        types_pct = 100.0 * types_hit / total
        results[update_name] = (chains_pct, types_pct)
        chain_pcts.append(chains_pct)
        type_pcts.append(types_pct)
        print(f"{update_name:>6} {total:>10} {chains_pct:>8.0f} "
              f"{types_pct:>10.0f}", file=out)
    if chain_pcts:
        print(
            f"{'avg':>6} {'':>10} {sum(chain_pcts) / len(chain_pcts):>8.0f} "
            f"{sum(type_pcts) / len(type_pcts):>10.0f}",
            file=out,
        )
    return results


# ---------------------------------------------------------------------------
# Figure 3.c -- view maintenance savings
# ---------------------------------------------------------------------------


def run_fig3c(grid: PairGrid | None = None,
              scales=MAINTENANCE_SCALES, out=sys.stdout
              ) -> dict[str, dict[str, float]]:
    """Average re-materialization time: full vs types-guided vs
    chains-guided, at three document scales.

    Returns ``{scale: {"full": s, "types": s, "chains": s}}``.
    """
    grid = grid or compute_grid()
    schema = xmark_dtd()
    views = parsed_views()
    updates = parsed_updates()
    print("Figure 3.c -- avg view re-materialization time per update (s)",
          file=out)
    print(f"{'scale':>6} {'bytes':>9} {'full':>9} {'types[6]':>9} "
          f"{'chains':>9} {'save-t%':>8} {'save-c%':>8}", file=out)
    results: dict[str, dict[str, float]] = {}
    for label, target in scales:
        tree = generate_document(schema, target, seed=42)
        env = {ROOT_VAR: [tree.root]}

        view_cost: dict[str, float] = {}
        for name, view in views.items():
            started = time.perf_counter()
            evaluate_query(view, tree.store, env)
            view_cost[name] = time.perf_counter() - started

        total_full = 0.0
        total_types = 0.0
        total_chains = 0.0
        for update_name in updates:
            full = sum(view_cost.values())
            types_time = sum(
                cost for name, cost in view_cost.items()
                if not grid.types_independent[(update_name, name)]
            )
            chains_time = sum(
                cost for name, cost in view_cost.items()
                if not grid.chains_independent[(update_name, name)]
            )
            total_full += full
            total_types += types_time
            total_chains += chains_time
        n = len(updates)
        averages = {
            "full": total_full / n,
            "types": total_types / n,
            "chains": total_chains / n,
            "bytes": float(document_bytes(tree)),
        }
        results[label] = averages
        save_types = 100.0 * (1 - averages["types"] / averages["full"])
        save_chains = 100.0 * (1 - averages["chains"] / averages["full"])
        print(
            f"{label:>6} {averages['bytes']:>9.0f} {averages['full']:>9.3f} "
            f"{averages['types']:>9.3f} {averages['chains']:>9.3f} "
            f"{save_types:>8.0f} {save_chains:>8.0f}",
            file=out,
        )
    return results


# ---------------------------------------------------------------------------
# Figure 3.d -- R-benchmark scalability
# ---------------------------------------------------------------------------


def run_fig3d(out=sys.stdout, **sweep_kwargs):
    """Chain-inference time for em over dn (and XMark) at three k values."""
    points = sweep(**sweep_kwargs)
    print("Figure 3.d -- chain inference time on the R-benchmark (s)",
          file=out)
    print(f"{'schema':>7} {'m':>3} {'k':>3} {'seconds':>9}", file=out)
    for point in points:
        name = point.n if isinstance(point.n, str) else f"d{point.n}"
        print(f"{name:>7} {point.m:>3} {point.k:>3} {point.seconds:>9.4f}",
              file=out)
    return points


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's Figure 3 panels."
    )
    parser.add_argument(
        "experiment",
        choices=["fig3a", "fig3b", "fig3c", "fig3d", "all"],
    )
    parser.add_argument("--corpus", type=int, default=None,
                        help="ground-truth corpus size (fig3b)")
    args = parser.parse_args(argv)

    if args.experiment in ("fig3a", "all"):
        grid = run_fig3a()
        print()
    else:
        grid = None
    if args.experiment in ("fig3b", "all"):
        truth = compute_ground_truth(corpus_size=args.corpus)
        run_fig3b(grid, truth)
        print()
    if args.experiment in ("fig3c", "all"):
        run_fig3c(grid)
        print()
    if args.experiment in ("fig3d", "all"):
        run_fig3d()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
