"""Serve-layer benchmark: micro-batched vs batching-disabled service.

Runs the same closed-loop 20x20 XMark workload (the paper's benchmark
views and updates, seeded random pair draws) against three in-process
service configurations on loopback TCP:

* ``batched``  -- the default: micro-batching admission queue feeding
  coalesced ``analyze_matrix`` calls, group-committed store writes;
* ``engine``   -- batching disabled but the shared per-schema engine
  kept: per-request executor hand-off and per-verdict commit (shows
  how much of the win is the queue vs. the engine itself);
* ``oneshot``  -- batching disabled *and* stateless request handling:
  every request pays the full one-shot analysis (universe + inference
  rebuilt per call), i.e. the service you would write without the
  engine/serving layers of PRs 1-3.

The acceptance gate (``benchmarks/test_serve_gate.py``) asserts the
micro-batched service reaches >= 3x the throughput of the
batching-disabled one-shot configuration with byte-identical verdicts
across all modes; ``speedup_vs_engine`` is reported alongside so the
queue's own contribution stays visible.  ``repro serve-bench`` writes
the JSON trajectory point committed as ``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import tempfile

from ..serve.loadgen import LoadgenConfig, run_loadgen
from ..serve.server import IndependenceService, ServeConfig

#: The gate's workload: 20 x 20 XMark views/updates, closed loop.
DEFAULT_WORKLOAD = dict(n_queries=20, n_updates=20, clients=32,
                        requests=1200, seed=7)


async def _run_mode(mode: str, store_path: str,
                    workload: dict, batch_window: float) -> dict:
    service = IndependenceService(ServeConfig(
        port=0,
        store_path=store_path,
        analysis_mode=mode,
        batch_window=batch_window,
        preload=("xmark",),
    ))
    host, port = await service.start()
    server_task = asyncio.create_task(service.serve_until_stopped())
    try:
        report = await run_loadgen(LoadgenConfig(
            host=host, port=port, schema="xmark", source="bench",
            **workload,
        ))
    finally:
        service.stop()
        await server_task
    return report


async def run_serve_bench_async(workload: dict | None = None,
                                batch_window: float = 0.002) -> dict:
    workload = {**DEFAULT_WORKLOAD, **(workload or {})}
    reports: dict[str, dict] = {}
    for mode in ("batched", "engine", "oneshot"):
        if mode == "oneshot":
            store_path = ":memory:"  # stateless mode never touches it
        else:
            handle, store_path = tempfile.mkstemp(
                prefix=f"repro-serve-{mode}-", suffix=".sqlite")
            os.close(handle)
        try:
            reports[mode] = await _run_mode(
                mode, store_path, workload, batch_window
            )
        finally:
            for suffix in ("", "-wal", "-shm"):
                path = store_path + suffix
                if path != ":memory:" and os.path.exists(path):
                    os.unlink(path)

    verdict_blobs = {
        mode: json.dumps(report["verdicts"], sort_keys=True)
        for mode, report in reports.items()
    }
    identical = len(set(verdict_blobs.values())) == 1
    batched = reports["batched"]["throughput_rps"]
    engine = reports["engine"]["throughput_rps"]
    oneshot = reports["oneshot"]["throughput_rps"]
    return {
        "workload": reports["batched"]["workload"],
        "batch_window_seconds": batch_window,
        "modes": {
            mode: {
                "throughput_rps": report["throughput_rps"],
                "latency_ms": report["latency_ms"],
                "errors": report["errors"],
                "coalesced_requests": report["service"]
                ["coalesced_requests"],
                "batches": report["service"]["batches"],
            }
            for mode, report in reports.items()
        },
        "verdicts_identical": identical,
        "distinct_pairs": reports["batched"]["distinct_pairs"],
        "independent_pairs": reports["batched"]["independent_pairs"],
        "speedup_vs_oneshot": batched / oneshot if oneshot else 0.0,
        "speedup_vs_engine": batched / engine if engine else 0.0,
    }


def run_serve_bench(workload: dict | None = None,
                    batch_window: float = 0.002,
                    out=sys.stdout) -> dict:
    """Run all three modes and print the comparison (CLI body)."""
    results = asyncio.run(run_serve_bench_async(workload, batch_window))
    shape = results["workload"]
    print(f"serve benchmark -- {shape['n_queries']}x{shape['n_updates']} "
          f"XMark pool, {shape['clients']} clients, "
          f"{shape['requests']} requests/mode", file=out)
    print(f"{'mode':>10} {'rps':>9} {'p50-ms':>8} {'p99-ms':>8} "
          f"{'batches':>8} {'coalesced':>10}", file=out)
    for mode, row in results["modes"].items():
        print(f"{mode:>10} {row['throughput_rps']:>9.0f} "
              f"{row['latency_ms']['p50']:>8.2f} "
              f"{row['latency_ms']['p99']:>8.2f} "
              f"{row['batches']:>8} {row['coalesced_requests']:>10}",
              file=out)
    print(f"speedup: {results['speedup_vs_oneshot']:.1f}x vs one-shot, "
          f"{results['speedup_vs_engine']:.2f}x vs engine-no-batching "
          "-- verdicts "
          f"{'identical' if results['verdicts_identical'] else 'DIFFER'} "
          f"({results['independent_pairs']}/"
          f"{results['distinct_pairs']} independent)", file=out)
    return results
