"""Serve-layer benchmarks: micro-batching and multi-core sharding.

Two experiments share one closed-loop loadgen harness over loopback
TCP:

**Mode comparison** (PR 3's gate): the same 20x20 XMark workload
against three in-process service configurations --

* ``batched``  -- the default: micro-batching admission queue feeding
  coalesced ``analyze_matrix`` calls, group-committed store writes;
* ``engine``   -- batching disabled but the shared per-schema engine
  kept: per-request executor hand-off and per-verdict commit (shows
  how much of the win is the queue vs. the engine itself);
* ``oneshot``  -- batching disabled *and* stateless request handling:
  every request pays the full one-shot analysis (universe + inference
  rebuilt per call), i.e. the service you would write without the
  engine/serving layers of PRs 1-3.

**Shard comparison** (this PR's gate): a *two-schema* workload (the
XMark benchmark pool plus a deterministic generated schema) against a
single-shard service and an N-shard service.  The schemas hash to
different shards, so on a multi-core machine the two admission queues
drain on separate cores; on a >= 2-core runner the acceptance gate
(``benchmarks/test_serve_gate.py``) requires 2-shard throughput >=
1.6x single-shard with byte-identical verdicts across shard counts.

``repro serve-bench`` runs both and appends the JSON trajectory point
committed as ``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import tempfile
from contextlib import contextmanager

from ..serve.loadgen import LoadgenConfig, run_loadgen
from ..serve.server import IndependenceService, ServeConfig, make_service

#: The mode-comparison gate's workload: 20 x 20 XMark views/updates.
DEFAULT_WORKLOAD = dict(n_queries=20, n_updates=20, clients=32,
                        requests=1200, seed=7)

#: The shard-comparison workload: two schemas whose digests hash to
#: different shards in a 2-shard pool (pinned by the sharding tests),
#: so affinity routing actually spreads the traffic.
SHARD_WORKLOAD = dict(schema=("xmark", "gen:11"), n_queries=12,
                      n_updates=12, clients=32, requests=1000, seed=7)

#: Version of the ``BENCH_serve.json`` point layout.  2 added
#: ``schema_version``/``cores`` at the top level and per-mode
#: ``server_latency_ms`` (server-side per-op p50/p99 from the scraped
#: request histograms, so a point records both sides of the wire).
SCHEMA_VERSION = 2


def _server_latency(report: dict) -> dict:
    """Per-op server-side latency summary of one loadgen report."""
    per_op = report.get("server_metrics", {}).get("per_op", {})
    return {
        op: {"p50_ms": row["p50_ms"], "p99_ms": row["p99_ms"],
             "count": row["count"]}
        for op, row in per_op.items()
    }


def available_cores() -> int:
    """Cores this process may schedule on (the shard gate's skip knob)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover -- non-Linux
        return os.cpu_count() or 1


@contextmanager
def _store_file(tag: str):
    """A throwaway SQLite path, WAL siblings cleaned up on exit."""
    handle, path = tempfile.mkstemp(prefix=f"repro-serve-{tag}-",
                                    suffix=".sqlite")
    os.close(handle)
    try:
        yield path
    finally:
        for suffix in ("", "-wal", "-shm"):
            if os.path.exists(path + suffix):
                os.unlink(path + suffix)


async def _run_config(config: ServeConfig, loadgen: LoadgenConfig) -> dict:
    """Start a service, drive one loadgen run against it, tear down."""
    service = make_service(config)
    host, port = await service.start()
    server_task = asyncio.create_task(service.serve_until_stopped())
    try:
        loadgen.host, loadgen.port = host, port
        report = await run_loadgen(loadgen)
    finally:
        service.stop()
        await server_task
    return report


async def _run_mode(mode: str, store_path: str,
                    workload: dict, batch_window: float) -> dict:
    """One mode-comparison leg (always unsharded)."""
    config = ServeConfig(
        port=0,
        store_path=store_path,
        analysis_mode=mode,
        batch_window=batch_window,
        preload=("xmark",),
    )
    assert isinstance(make_service(config), IndependenceService)
    return await _run_config(config, LoadgenConfig(
        schema="xmark", source="bench", scrape_metrics=True, **workload,
    ))


async def run_serve_bench_async(workload: dict | None = None,
                                batch_window: float = 0.002,
                                store: str | None = None) -> dict:
    """The three-mode comparison (the PR 3 acceptance numbers).

    ``store`` overrides the throwaway per-mode SQLite file with one
    store URL (``sqlite:///...``, ``postgresql://...``) so the bench
    can measure a specific backend; the stateful legs then share that
    backend, which warm-starts the later ones.  The oneshot leg never
    touches a store either way.
    """
    workload = {**DEFAULT_WORKLOAD, **(workload or {})}
    reports: dict[str, dict] = {}
    for mode in ("batched", "engine", "oneshot"):
        if mode == "oneshot":
            # Stateless mode never touches the store.
            reports[mode] = await _run_mode(
                mode, ":memory:", workload, batch_window
            )
            continue
        if store is not None:
            reports[mode] = await _run_mode(
                mode, store, workload, batch_window
            )
            continue
        with _store_file(mode) as store_path:
            reports[mode] = await _run_mode(
                mode, store_path, workload, batch_window
            )

    verdict_blobs = {
        mode: json.dumps(report["verdicts"], sort_keys=True)
        for mode, report in reports.items()
    }
    identical = len(set(verdict_blobs.values())) == 1
    batched = reports["batched"]["throughput_rps"]
    engine = reports["engine"]["throughput_rps"]
    oneshot = reports["oneshot"]["throughput_rps"]
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": reports["batched"]["workload"],
        "batch_window_seconds": batch_window,
        "cores": available_cores(),
        "modes": {
            mode: {
                "throughput_rps": report["throughput_rps"],
                "latency_ms": report["latency_ms"],
                "server_latency_ms": _server_latency(report),
                "errors": report["errors"],
                "coalesced_requests": report["service"]
                ["coalesced_requests"],
                "batches": report["service"]["batches"],
            }
            for mode, report in reports.items()
        },
        "verdicts_identical": identical,
        "distinct_pairs": reports["batched"]["distinct_pairs"],
        "independent_pairs": reports["batched"]["independent_pairs"],
        "speedup_vs_oneshot": batched / oneshot if oneshot else 0.0,
        "speedup_vs_engine": batched / engine if engine else 0.0,
    }


async def run_shard_bench_async(shards: int = 2,
                                workload: dict | None = None,
                                batch_window: float = 0.002,
                                store: str | None = None) -> dict:
    """Single-shard vs ``shards``-shard throughput, same workload.

    Both legs run the default batched mode; the single-shard leg is the
    plain in-process service (what ``--shards 1`` deploys), the sharded
    leg is the router + worker-process pool.  Verdicts must be
    byte-identical across shard counts -- the analysis is a pure
    function of ``(schema digest, k, query, update)``, so topology may
    only change speed, never answers.  ``store`` (a store URL)
    replaces the throwaway per-leg SQLite file, so both legs share one
    backend (the second leg warm-starts from the first).
    """
    workload = {**SHARD_WORKLOAD, **(workload or {})}
    reports: dict[int, dict] = {}

    async def leg(count: int, store_path: str) -> dict:
        config = ServeConfig(
            port=0,
            store_path=store_path,
            batch_window=batch_window,
            preload=("xmark",),
            shards=count,
        )
        return await _run_config(
            config, LoadgenConfig(source="bench", scrape_metrics=True,
                                  **workload)
        )

    for count in sorted({1, shards}):
        if store is not None:
            reports[count] = await leg(count, store)
            continue
        with _store_file(f"{count}shard") as store_path:
            reports[count] = await leg(count, store_path)

    verdict_blobs = {
        count: json.dumps(report["verdicts"], sort_keys=True)
        for count, report in reports.items()
    }
    identical = len(set(verdict_blobs.values())) == 1
    single = reports[1]["throughput_rps"]
    sharded = reports[shards]["throughput_rps"]
    return {
        "workload": reports[shards]["workload"],
        "batch_window_seconds": batch_window,
        "cores": available_cores(),
        "shards": shards,
        "shard_counts": {
            str(count): {
                "throughput_rps": report["throughput_rps"],
                "latency_ms": report["latency_ms"],
                "server_latency_ms": _server_latency(report),
                "errors": report["errors"],
                "coalesced_requests": report["service"]
                ["coalesced_requests"],
                "batches": report["service"]["batches"],
                "shard_routing": report["service"]["shard_routing"],
            }
            for count, report in reports.items()
        },
        "verdicts_identical": identical,
        "distinct_pairs": reports[shards]["distinct_pairs"],
        "shard_speedup": sharded / single if single else 0.0,
    }


def append_trajectory_point(path: str, point: dict) -> None:
    """Append one benchmark point to the ``BENCH_serve.json`` trajectory.

    The file holds ``{"points": [...]}``; a pre-existing single-object
    file (the original PR 3 format) is wrapped as the first point.
    """
    points: list[dict] = []
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
        if isinstance(existing, dict) and \
                isinstance(existing.get("points"), list):
            points = existing["points"]
        elif isinstance(existing, dict):
            points = [existing]
    points.append(point)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"points": points}, handle, indent=2, sort_keys=True)
        handle.write("\n")


def run_serve_bench(workload: dict | None = None,
                    batch_window: float = 0.002,
                    shards: int = 2,
                    store: str | None = None,
                    out=sys.stdout) -> dict:
    """Run the mode and shard comparisons; print both (CLI body).

    Pass ``shards <= 1`` to skip the shard comparison (e.g. on a
    single-core box where it only measures router overhead), and
    ``store`` (a store URL) to bench a specific backend instead of
    throwaway SQLite files.
    """
    results = asyncio.run(
        run_serve_bench_async(workload, batch_window, store=store)
    )
    shape = results["workload"]
    print(f"serve benchmark -- {shape['n_queries']}x{shape['n_updates']} "
          f"XMark pool, {shape['clients']} clients, "
          f"{shape['requests']} requests/mode", file=out)
    print(f"{'mode':>10} {'rps':>9} {'p50-ms':>8} {'p99-ms':>8} "
          f"{'batches':>8} {'coalesced':>10}", file=out)
    for mode, row in results["modes"].items():
        print(f"{mode:>10} {row['throughput_rps']:>9.0f} "
              f"{row['latency_ms']['p50']:>8.2f} "
              f"{row['latency_ms']['p99']:>8.2f} "
              f"{row['batches']:>8} {row['coalesced_requests']:>10}",
              file=out)
    print(f"speedup: {results['speedup_vs_oneshot']:.1f}x vs one-shot, "
          f"{results['speedup_vs_engine']:.2f}x vs engine-no-batching "
          "-- verdicts "
          f"{'identical' if results['verdicts_identical'] else 'DIFFER'} "
          f"({results['independent_pairs']}/"
          f"{results['distinct_pairs']} independent)", file=out)

    if shards > 1:
        sharding = asyncio.run(
            run_shard_bench_async(shards, workload, store=store)
        )
        results["sharding"] = sharding
        print(f"shard comparison -- schemas "
              f"{','.join(sharding['workload']['schemas'])}, "
              f"{sharding['cores']} core(s)", file=out)
        for count, row in sharding["shard_counts"].items():
            routing = row["shard_routing"] or {}
            spread = "+".join(str(routing[key])
                              for key in sorted(routing)) or "-"
            print(f"{count + ' shard':>10} "
                  f"{row['throughput_rps']:>9.0f} "
                  f"{row['latency_ms']['p50']:>8.2f} "
                  f"{row['latency_ms']['p99']:>8.2f} "
                  f"{'routed ' + spread:>19}", file=out)
        print(f"shard speedup: {sharding['shard_speedup']:.2f}x "
              f"({sharding['shards']} shards vs 1) -- verdicts "
              f"{'identical' if sharding['verdicts_identical'] else 'DIFFER'}",
              file=out)
    return results
