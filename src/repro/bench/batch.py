"""Amortized batch-analysis benchmark: engine matrix vs one-shot calls.

The engine's pitch is one schema compilation serving many pair
verdicts; this module quantifies it.  The *one-shot* baseline calls
:func:`repro.analysis.independence.analyze` per pair, re-deriving the
universe and both chain inferences every time (the seed behavior); the
*batch* side hands the same query x update grid to a cold
:class:`~repro.analysis.engine.AnalysisEngine` in one
:meth:`~repro.analysis.engine.AnalysisEngine.analyze_matrix` call.

Run from the CLI::

    repro bench-batch [--queries 10] [--updates 10] [--processes N]

``benchmarks/test_batch_engine.py`` asserts the PR's acceptance gate on
the same workload: >= 3x lower amortized per-pair time with identical
verdicts.
"""

from __future__ import annotations

import sys
import time

from ..analysis.engine import AnalysisEngine
from ..analysis.independence import analyze
from ..schema.catalog import xmark_dtd
from .updates import parsed_updates
from .views import parsed_views


def batch_workload(n_queries: int = 10, n_updates: int = 10):
    """The first ``n`` XMark benchmark views and updates (name, AST)."""
    views = list(parsed_views().items())[:n_queries]
    updates = list(parsed_updates().items())[:n_updates]
    return views, updates


def run_one_shot(views, updates) -> tuple[list[bool], float]:
    """Per-pair ``analyze()`` with no shared state (the baseline)."""
    started = time.perf_counter()
    verdicts = [
        analyze(view, update, xmark_dtd(),
                collect_witnesses=False).independent
        for _, view in views
        for _, update in updates
    ]
    return verdicts, time.perf_counter() - started


def run_batch(views, updates, processes: int | None = None,
              engine: AnalysisEngine | None = None
              ) -> tuple[list[bool], float]:
    """One ``analyze_matrix`` call on a (by default cold) engine."""
    if engine is None:
        engine = AnalysisEngine(xmark_dtd())
    started = time.perf_counter()
    matrix = engine.analyze_matrix(
        [view for _, view in views],
        [update for _, update in updates],
        processes=processes,
    )
    elapsed = time.perf_counter() - started
    verdicts = [v for row in matrix.verdict_rows() for v in row]
    return verdicts, elapsed


def run_bench_batch(n_queries: int = 10, n_updates: int = 10,
                    processes: int | None = None, out=sys.stdout) -> dict:
    """Print and return the amortized comparison for the CLI."""
    views, updates = batch_workload(n_queries, n_updates)
    pairs = len(views) * len(updates)
    if pairs == 0:
        raise SystemExit("error: --queries and --updates must be >= 1")

    one_shot_verdicts, one_shot_seconds = run_one_shot(views, updates)
    batch_verdicts, batch_seconds = run_batch(views, updates)

    results = {
        "pairs": pairs,
        "one_shot_seconds": one_shot_seconds,
        "one_shot_per_pair": one_shot_seconds / pairs,
        "batch_seconds": batch_seconds,
        "batch_per_pair": batch_seconds / pairs,
        "speedup": one_shot_seconds / batch_seconds,
        "verdicts_equal": one_shot_verdicts == batch_verdicts,
        "independent_pairs": sum(batch_verdicts),
    }
    if processes is not None and processes > 1:
        _, parallel_seconds = run_batch(views, updates, processes=processes)
        results["parallel_seconds"] = parallel_seconds
        results["parallel_per_pair"] = parallel_seconds / pairs

    print(f"batch analysis benchmark -- {len(views)} views x "
          f"{len(updates)} updates ({pairs} pairs, XMark)", file=out)
    print(f"{'mode':>16} {'total-s':>9} {'per-pair-ms':>12}", file=out)
    print(f"{'one-shot':>16} {one_shot_seconds:>9.3f} "
          f"{results['one_shot_per_pair'] * 1e3:>12.3f}", file=out)
    print(f"{'batch (cold)':>16} {batch_seconds:>9.3f} "
          f"{results['batch_per_pair'] * 1e3:>12.3f}", file=out)
    if "parallel_seconds" in results:
        print(f"{'batch (pool)':>16} {results['parallel_seconds']:>9.3f} "
              f"{results['parallel_per_pair'] * 1e3:>12.3f}", file=out)
    print(f"amortized speedup: {results['speedup']:.1f}x -- verdicts "
          f"{'identical' if results['verdicts_equal'] else 'DIFFER'} "
          f"({results['independent_pairs']}/{pairs} independent)", file=out)
    return results
