"""The 36 benchmark views (Section 6.2).

The paper's view set is XMark q1-q20 [20] plus XPathMark A1-A8 / B1-B8
[13], rewritten into the considered fragment exactly as the paper
describes: predicate conditions in disjunctive form, attribute use
removed, paths extracted from function calls and arithmetic (so value
joins and aggregations become navigation skeletons).  ``Ai`` views use
only downward axes; ``Bi`` views also use upward and horizontal axes.

Each view is a pair (name, surface text); parsed ASTs are cached.
"""

from __future__ import annotations

from functools import lru_cache

from ..xquery.ast import Query
from ..xquery.parser import parse_query

#: XMark queries q1-q20, rewritten (value predicates/aggregations dropped,
#: navigation and construction structure kept).
XMARK_VIEWS: dict[str, str] = {
    "q1": "/site/people/person/name",
    "q2": "/site/open_auctions/open_auction/bidder/increase",
    "q3": (
        "for $a in /site/open_auctions/open_auction return "
        "if ($a/bidder/increase) then $a/current else ()"
    ),
    "q4": (
        "for $b in /site/open_auctions/open_auction return "
        "if ($b/bidder/personref) then $b/reserve else ()"
    ),
    "q5": "/site/closed_auctions/closed_auction/price",
    "q6": "/site/regions//item",
    "q7": "(/site//description, /site//annotation, /site//emailaddress)",
    "q8": (
        "for $p in /site/people/person return "
        "for $t in /site/closed_auctions/closed_auction return "
        "if ($t/buyer) then ($p/name, $t/price) else ()"
    ),
    "q9": (
        "for $p in /site/people/person return "
        "for $t in /site/closed_auctions/closed_auction return "
        "for $i in /site/regions/europe/item return ($p/name, $i/name)"
    ),
    "q10": (
        "for $i in /site/people/person/profile/interest return "
        "for $p in /site/people/person return "
        "<categorie>{($p/profile/gender, $p/profile/age, $p/name)}"
        "</categorie>"
    ),
    "q11": (
        "for $p in /site/people/person return "
        "for $o in /site/open_auctions/open_auction return "
        "if ($p/profile) then $o/initial else ()"
    ),
    "q12": (
        "for $p in /site/people/person return "
        "for $o in /site/open_auctions/open_auction return "
        "if ($p/profile/business) then $o/reserve else ()"
    ),
    "q13": (
        "for $i in /site/regions/australia/item return "
        "<item>{($i/name, $i/description)}</item>"
    ),
    "q14": (
        "for $i in /site//item return "
        "if ($i/description//keyword) then $i/name else ()"
    ),
    "q15": (
        "/site/closed_auctions/closed_auction/annotation/description/"
        "parlist/listitem/parlist/listitem/text/emph/keyword"
    ),
    "q16": (
        "for $a in /site/closed_auctions/closed_auction return "
        "if ($a/annotation/description/parlist/listitem/parlist/listitem/"
        "text/emph/keyword) then $a/seller else ()"
    ),
    "q17": (
        "for $p in /site/people/person return "
        "if (not($p/homepage)) then $p/name else ()"
    ),
    "q18": "/site/open_auctions/open_auction/initial",
    "q19": (
        "for $b in /site/regions//item return ($b/name, $b/location)"
    ),
    "q20": (
        "for $p in /site/people/person return "
        "if ($p/profile/age) then $p/profile/education else ()"
    ),
}

#: XPathMark A1-A8: downward axes only.
XPATHMARK_A_VIEWS: dict[str, str] = {
    "A1": (
        "/site/closed_auctions/closed_auction/annotation/description/"
        "text/keyword"
    ),
    "A2": "//closed_auction//keyword",
    "A3": "/site/closed_auctions/closed_auction//keyword",
    "A4": (
        "/site/closed_auctions/closed_auction"
        "[annotation/description/text/keyword]/date"
    ),
    "A5": "/site/closed_auctions/closed_auction[descendant::keyword]/date",
    "A6": "/site/people/person[profile/gender and profile/age]/name",
    "A7": "/site/people/person[phone or homepage]/name",
    "A8": (
        "/site/people/person[address and (phone or homepage) and "
        "(creditcard or profile)]/name"
    ),
}

#: XPathMark B1-B8: also upward and horizontal axes.
XPATHMARK_B_VIEWS: dict[str, str] = {
    "B1": (
        "/site/regions/*/item"
        "[parent::namerica or parent::samerica]/name"
    ),
    "B2": "//keyword/ancestor::listitem/text/keyword",
    "B3": (
        "/site/open_auctions/open_auction/bidder"
        "[following-sibling::bidder]/increase"
    ),
    "B4": (
        "/site/open_auctions/open_auction/bidder"
        "[preceding-sibling::bidder]/increase"
    ),
    "B5": "/site/regions/*/item[following::item]/name",
    "B6": "//business/ancestor::person/name",
    "B7": "//item[preceding::item]/name",
    "B8": "//keyword/ancestor::description/parent::item/name",
}

#: All 36 views in benchmark order.
ALL_VIEWS: dict[str, str] = {
    **XMARK_VIEWS,
    **XPATHMARK_A_VIEWS,
    **XPATHMARK_B_VIEWS,
}


def view_names() -> list[str]:
    """The 36 view names in benchmark order."""
    return list(ALL_VIEWS)


@lru_cache(maxsize=None)
def view(name: str) -> Query:
    """Parsed AST of a view (cached)."""
    return parse_query(ALL_VIEWS[name])


def parsed_views() -> dict[str, Query]:
    """All views, parsed."""
    return {name: view(name) for name in ALL_VIEWS}
