"""Small shared helpers.

Frozen dataclasses that declare ``__slots__`` manually do not pickle:
default ``__setstate__`` uses ``setattr``, which the frozen ``__setattr__``
rejects.  The engine's process-pool fan-out ships ASTs and schemas to
workers, so every AST/regex base class installs these two methods.
"""

from __future__ import annotations


def slots_getstate(self) -> dict:
    """Collect slot and dict state across the MRO for pickling."""
    state: dict = {}
    for klass in type(self).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if hasattr(self, slot):
                state[slot] = getattr(self, slot)
    state.update(getattr(self, "__dict__", {}))
    return state


def slots_setstate(self, state: dict) -> None:
    """Restore pickled state bypassing the frozen ``__setattr__``."""
    for name, value in state.items():
        object.__setattr__(self, name, value)
