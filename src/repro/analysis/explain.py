"""Human-readable explanations of independence verdicts.

Renders chain sets, k-bound derivations and conflict witnesses so that a
user can audit *why* the analyzer accepted or rejected a pair -- the kind
of report a view-maintenance operator or access-control administrator
would want in a log.
"""

from __future__ import annotations

from io import StringIO

from ..schema.dtd import DTD
from ..schema.edtd import EDTD
from ..xquery.ast import Query
from ..xquery.parser import parse_query
from ..xupdate.ast import Update
from ..xupdate.parser import parse_update
from .cdag import ChainExplosion
from .independence import IndependenceReport, analyze
from .kbound import multiplicity, recursive_steps

Schema = DTD | EDTD

#: Do not render more chains than this per section.
_MAX_CHAINS = 12


def _render_chain_set(components, out: StringIO, label: str,
                      limit: int = 50_000) -> None:
    try:
        chains = set()
        for component in components:
            chains |= component.enumerate_chains(limit)
        shown = sorted(chains)[:_MAX_CHAINS]
        suffix = "" if len(chains) <= _MAX_CHAINS else \
            f"  ... ({len(chains) - _MAX_CHAINS} more)"
        rendered = ", ".join(".".join(c) for c in shown) or "(none)"
        out.write(f"  {label:14s}: {rendered}{suffix}\n")
    except ChainExplosion:
        ends = {end for c in components for end in c.ends}
        out.write(
            f"  {label:14s}: >{limit} chains "
            f"(CDAG endpoints: {sorted({s for (_, s) in ends})})\n"
        )


def explain(
    query: Query | str,
    update: Update | str,
    schema: Schema,
    report: IndependenceReport | None = None,
) -> str:
    """A multi-line explanation of the verdict for one pair.

    >>> from repro.schema import paper_doc_dtd
    >>> text = explain("//a//c", "delete //b//c", paper_doc_dtd())
    >>> "INDEPENDENT" in text
    True
    """
    if isinstance(query, str):
        query = parse_query(query)
    if isinstance(update, str):
        update = parse_update(update)
    if report is None:
        report = analyze(query, update, schema)

    out = StringIO()
    verdict = "INDEPENDENT" if report.independent else "DEPENDENT"
    out.write(f"verdict: {verdict}\n")
    out.write(
        f"  k-bound       : k = kq + ku = {report.k_query} + "
        f"{report.k_update}"
    )
    if report.k != max(1, report.k_query + report.k_update):
        out.write(f" (overridden to {report.k})")
    out.write("\n")
    out.write(
        f"  recursion     : R(q) = {recursive_steps(query)}, "
        f"R(u) = {recursive_steps(update)}, "
        f"schema {'is' if _recursive(schema) else 'is not'} recursive\n"
    )
    out.write(f"  analysis time : {report.analysis_seconds * 1e3:.2f} ms\n")

    _render_chain_set(report.query_chains.returns, out, "return chains")
    _render_chain_set(report.query_chains.used, out, "used chains")
    _render_chain_set(report.query_chains.elements, out, "element chains")
    _render_chain_set(report.update_chains, out, "update chains")

    if report.conflicts:
        out.write("  conflicts:\n")
        seen = set()
        for conflict in report.conflicts:
            key = (conflict.kind, conflict.witness)
            if key in seen:
                continue
            seen.add(key)
            witness = ".".join(conflict.witness) or "(witness suppressed)"
            out.write(f"    {conflict.kind:14s} via {witness}\n")
            if len(seen) >= _MAX_CHAINS:
                out.write(f"    ... ({len(report.conflicts)} total)\n")
                break
    else:
        out.write(
            "  no pair of inferred chains is prefix-related "
            "(Definition 4.1): the update cannot reach any node the "
            "query returns or uses.\n"
        )
    return out.getvalue()


def _recursive(schema: Schema) -> bool:
    if isinstance(schema, EDTD):
        return schema.core.is_recursive()
    return schema.is_recursive()


def explain_multiplicity(exp: Query | Update, schema: Schema) -> str:
    """One-line rendering of the Table 3 derivation for an expression."""
    k = multiplicity(exp)
    r = recursive_steps(exp)
    return (
        f"k = {k} (max tag frequency {k - r} + {r} recursive steps; "
        f"|Sigma| = {len(schema.alphabet)})"
    )
