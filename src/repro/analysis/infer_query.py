"""Chain inference for queries: the rules of Table 1 over CDAG components.

Judgments ``Gamma |-C q : (r; v; e)`` are computed *batched*: a variable is
bound to whole components rather than to one chain at a time, matching the
paper's CDAG implementation (Section 6.1).  The (FOR) and (STEPUH) filters
are realized per CDAG *endpoint* via :func:`productive_ends` -- exactly the
granularity of the paper's auxiliary endpoint index.

Two deliberate consequences of batching, both sound (see DESIGN.md):

* when at least one end of the iteration source is productive, the body's
  used chains are kept wholesale rather than per productive chain (keeping
  more used chains can only make the analysis more conservative);
* the (ELT) bare-tag chain ``{a | r+e = empty}`` is emitted only when the
  content is empty for *all* bindings; missed bare chains are subsumed by
  the longer element chains emitted for the non-empty bindings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..schema.regex import TEXT_SYMBOL
from ..xquery.ast import (
    Concat,
    Element,
    Empty,
    For,
    If,
    Let,
    Query,
    Step,
    StringLit,
    free_variables,
)
from .cdag import (
    Component,
    Node,
    Universe,
    descendant_closure,
    graft,
    make_component,
    restrict_to_ends,
    singleton_component,
)
from .steps import productive_ends, step_on_component


class InferenceError(ValueError):
    """Raised for unbound variables during chain inference."""


#: A chain set: a tuple of components (the provenance units / "codes").
Components = tuple[Component, ...]

#: Static environment Gamma: variable -> chain set of its possible bindings.
Gamma = tuple[tuple[str, Components], ...]


def gamma_bind(gamma: Gamma, var: str, value: Components) -> Gamma:
    """Functional update of an environment."""
    return tuple((v, c) for (v, c) in gamma if v != var) + ((var, value),)


def gamma_get(gamma: Gamma, var: str) -> Components:
    for name, value in gamma:
        if name == var:
            return value
    raise InferenceError(f"unbound variable {var} in chain inference")


@dataclass(frozen=True)
class QueryChains:
    """The triple ``(r; v; e)`` of Table 1."""

    returns: Components
    used: Components
    elements: Components

    def has_output(self) -> bool:
        """``r + e != empty``: can the query produce anything?"""
        return any(not c.is_empty() for c in self.returns) or any(
            not c.is_empty() for c in self.elements
        )


_EMPTY = QueryChains((), (), ())


def _live(components: Components) -> Components:
    return tuple(c for c in components if not c.is_empty())


class QueryInference:
    """Chain inference engine for one universe (schema + depth cap).

    Results are memoized *structurally* on ``(query AST, Gamma)``: AST
    nodes are frozen dataclasses, so two structurally equal
    (sub)expressions -- whether from one parse or from re-parsing the
    same source text -- share a single inference.  Environments are
    hashable tuples restricted to the query's free variables, so
    repeated sub-inferences (triggered by the FOR filter) are free.
    """

    def __init__(self, universe: Universe):
        self.universe = universe
        self._memo: dict[tuple[Query, Gamma], QueryChains] = {}

    # -- entry points --------------------------------------------------------

    def infer_root(self, query: Query, root_var: str) -> QueryChains:
        """Infer a quasi-closed query with ``root_var`` bound to the root."""
        root = singleton_component(self.universe.root())
        gamma: Gamma = ((root_var, (root,)),)
        return self.infer(query, gamma)

    def infer(self, query: Query, gamma: Gamma) -> QueryChains:
        key = (query, _relevant_gamma(gamma, query))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._infer(query, gamma)
        self._memo[key] = result
        return result

    # -- the rules -------------------------------------------------------

    def _infer(self, query: Query, gamma: Gamma) -> QueryChains:
        universe = self.universe

        if isinstance(query, Empty):
            return _EMPTY                                         # (EMPTY)

        if isinstance(query, StringLit):                          # (TEXT)
            text = singleton_component((0, TEXT_SYMBOL), constructed=True)
            return QueryChains((), (), (text,))

        if isinstance(query, Concat):                             # (CONC)
            left = self.infer(query.left, gamma)
            right = self.infer(query.right, gamma)
            return QueryChains(
                left.returns + right.returns,
                left.used + right.used,
                left.elements + right.elements,
            )

        if isinstance(query, If):                                 # (IF)
            cond = self.infer(query.cond, gamma)
            then = self.infer(query.then, gamma)
            orelse = self.infer(query.orelse, gamma)
            return QueryChains(
                then.returns + orelse.returns,
                cond.used + then.used + orelse.used + cond.returns,
                then.elements + orelse.elements,
            )

        if isinstance(query, Step):                    # (STEPF) / (STEPUH)
            context = gamma_get(gamma, query.var)
            returns: list[Component] = []
            used: list[Component] = []
            for component in context:
                result = step_on_component(
                    component, query.axis, query.test, universe
                )
                if not result.is_empty():
                    returns.append(result)
                if not query.axis.is_forward_downward:
                    # (STEPUH): context chains that lead to results become
                    # used chains.
                    good = productive_ends(
                        component, query.axis, query.test, universe
                    )
                    kept = restrict_to_ends(component, set(good))
                    if not kept.is_empty():
                        used.append(kept)
            return QueryChains(tuple(returns), tuple(used), ())

        if isinstance(query, For):                                # (FOR)
            source = self.infer(query.source, gamma)
            inner_gamma = gamma_bind(gamma, query.var, source.returns)
            body = self.infer(query.body, inner_gamma)
            used: list[Component] = list(source.used)
            any_productive = False
            for component in source.returns:
                good = self.productive_for_body(
                    query.body, query.var, component, inner_gamma
                )
                kept = restrict_to_ends(component, set(good))
                if not kept.is_empty():
                    any_productive = True
                    used.append(kept)
            if any_productive:
                used.extend(body.used)
            return QueryChains(body.returns, tuple(used), body.elements)

        if isinstance(query, Let):                                # (LET)
            source = self.infer(query.source, gamma)
            inner_gamma = gamma_bind(gamma, query.var, source.returns)
            body = self.infer(query.body, inner_gamma)
            return QueryChains(
                body.returns,
                source.returns + source.used + body.used,
                body.elements,
            )

        if isinstance(query, Element):                            # (ELT)
            inner = self.infer(query.content, gamma)
            elements: list[Component] = []
            # { a.alpha.c' | c.alpha in r, c.alpha.c' in C }
            for component in _live(inner.returns):
                elements.append(
                    self._element_over_returns(query.tag, component)
                )
            # { a.c | c in e }
            for component in _live(inner.elements):
                elements.append(self._element_over_element(query.tag,
                                                           component))
            # { a | r + e = empty }
            if not elements:
                elements.append(
                    singleton_component((0, query.tag), constructed=True)
                )
            used = tuple(
                descendant_closure(component, universe)
                for component in _live(inner.returns)
            ) + inner.used
            return QueryChains((), used, tuple(elements))

        raise InferenceError(f"unknown query node {query!r}")

    # -- (ELT) helpers -----------------------------------------------------

    def _element_over_returns(self, tag: str, component: Component
                              ) -> Component:
        """Chains ``a.alpha.c'``: the returned node's symbol re-rooted under
        the constructed tag, closed under schema descendants."""
        root: Node = (0, tag)
        edges: set[tuple[Node, Node]] = set()
        ends: set[Node] = set()
        frontier: list[Node] = []
        for (_, symbol) in component.ends:
            node = (1, symbol)
            edges.add((root, node))
            ends.add(node)
            frontier.append(node)
        seen = set(frontier)
        while frontier:
            node = frontier.pop()
            for succ in self.universe.successors(node):
                edges.add((node, succ))
                ends.add(succ)
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return make_component(root, edges, ends, constructed=True)

    def _element_over_element(self, tag: str, inner: Component) -> Component:
        """Chains ``a.c`` for nested element chains ``c``."""
        return graft(
            singleton_component((0, tag), constructed=True),
            (0, tag),
            inner,
        )

    # -- the (FOR) filter ----------------------------------------------------

    def productive_for_body(self, body: Query, var: str,
                            component: Component, gamma: Gamma
                            ) -> frozenset[Node]:
        """Over-approximation of the ends ``n`` of ``component`` for which
        the body's ``r + e`` is non-empty under ``var -> n``.

        Sound direction: keeping *more* ends keeps more used chains, which
        can only make the independence verdict more conservative.
        """
        if var not in free_variables(body):
            return (component.ends
                    if self.infer(body, gamma).has_output()
                    else frozenset())

        if isinstance(body, Step):
            # body.var == var here (otherwise var would not be free).
            return productive_ends(component, body.axis, body.test,
                                   self.universe)

        if isinstance(body, (StringLit, Element)):
            return component.ends

        if isinstance(body, Empty):
            return frozenset()

        if isinstance(body, Concat):
            return self.productive_for_body(
                body.left, var, component, gamma
            ) | self.productive_for_body(body.right, var, component, gamma)

        if isinstance(body, If):
            # (IF) infers r = r1+r2, e = e1+e2: the condition does not gate
            # static emptiness.
            return self.productive_for_body(
                body.then, var, component, gamma
            ) | self.productive_for_body(body.orelse, var, component, gamma)

        if isinstance(body, For):
            source_part = self._productive_or_all(body.source, var,
                                                  component, gamma)
            inner_gamma = gamma_bind(
                gamma, body.var, self.infer(body.source, gamma).returns
            )
            body_part = self._productive_or_all(body.body, var, component,
                                                inner_gamma)
            return source_part & body_part

        if isinstance(body, Let):
            inner_gamma = gamma_bind(
                gamma, body.var, self.infer(body.source, gamma).returns
            )
            return self._productive_or_all(body.body, var, component,
                                           inner_gamma)

        raise InferenceError(f"unknown query node {body!r}")

    def _productive_or_all(self, query: Query, var: str,
                           component: Component, gamma: Gamma
                           ) -> frozenset[Node]:
        if var in free_variables(query):
            return self.productive_for_body(query, var, component, gamma)
        return (component.ends if self.infer(query, gamma).has_output()
                else frozenset())


def _relevant_gamma(gamma: Gamma, query: Query) -> Gamma:
    """Memo key: restrict the environment to the query's free variables."""
    free = free_variables(query)
    return tuple((v, c) for (v, c) in gamma if v in free)
