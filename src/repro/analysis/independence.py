"""The chain-based independence check: ``q  _|_Ckd  u`` (Sections 4-6).

:func:`analyze` is the library's main entry point.  It

1. computes the pair multiplicity ``k = k_q + k_u`` (Table 3) unless an
   explicit ``k`` is given (the R-benchmark overrides it);
2. builds the leveled universe with depth cap ``k * |Sigma| + 2``;
3. infers query chains ``(r; v; e)`` and update chains ``U``;
4. reports independence iff
   ``confl(r, U) = confl(U, r) = confl(U, v) = empty`` (Definition 4.1),
   where ``confl(tau1, tau2)`` holds when some ``tau1``-chain is a prefix
   of some ``tau2``-chain.

Soundness: a verdict of *independent* implies semantic independence
``q |=d u`` (Theorems 4.2 and 5.1).  The converse direction is
undecidable, so a *dependent* verdict may be a false alarm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..schema.dtd import DTD
from ..schema.edtd import EDTD
from ..xquery.ast import Query
from ..xupdate.ast import Update
from .cdag import Component, Universe, components_conflict, conflict_witness
from .infer_query import Components, QueryChains

Schema = DTD | EDTD


@dataclass(frozen=True)
class Conflict:
    """One witness of chain overlap (why independence was rejected)."""

    kind: str                      # "return-update" | "update-return" | "update-used"
    witness: tuple[str, ...]       # the prefix chain witnessing the overlap

    def __str__(self) -> str:
        return f"{self.kind}: {'.'.join(self.witness)}"


@dataclass(frozen=True)
class IndependenceReport:
    """Outcome of the static analysis for one query-update pair."""

    independent: bool
    k: int
    k_query: int
    k_update: int
    conflicts: tuple[Conflict, ...]
    analysis_seconds: float
    query_chains: QueryChains = field(repr=False, default=None)
    update_chains: Components = field(repr=False, default=None)

    def __str__(self) -> str:
        verdict = "independent" if self.independent else "dependent"
        return (
            f"{verdict} (k={self.k}, kq={self.k_query}, ku={self.k_update}, "
            f"{self.analysis_seconds * 1e3:.2f} ms)"
        )


#: Condensation skeleton of a schema's type graph: per SCC in topological
#: order ``(size, is_recursive, predecessor_indices)``, plus the index of
#: the start SCC.  Pure and k-independent, so an engine computes it once
#: and derives every per-k depth cap from it.
RecursionStructure = tuple[tuple[tuple[int, bool, tuple[int, ...]], ...], int]


def recursion_structure(schema: Schema) -> RecursionStructure:
    """Step 1 of the depth-cap computation (k-independent, cacheable)."""
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(schema.alphabet)
    for tag in schema.alphabet:
        for child in schema.children_of(tag):
            if child in schema.alphabet:
                graph.add_edge(tag, child)
    condensation = nx.condensation(graph)
    members = condensation.graph["mapping"]
    order = list(nx.topological_sort(condensation))
    index = {scc_id: position for position, scc_id in enumerate(order)}
    entries = []
    for scc_id in order:
        scc = condensation.nodes[scc_id]["members"]
        recursive = len(scc) > 1 or any(
            s in schema.children_of(s) for s in scc
        )
        preds = tuple(sorted(
            index[pred] for pred in condensation.predecessors(scc_id)
        ))
        entries.append((len(scc), recursive, preds))
    return tuple(entries), index[members[schema.start]]


def depth_cap_from(structure: RecursionStructure, k: int) -> int:
    """Step 2: the depth cap for ``k`` given a condensation skeleton.

    A k-chain repeats each tag at most ``k`` times, so along any chain a
    strongly connected component of the type graph contributes at most
    ``k * |SCC|`` symbols if it is recursive and 1 if it is a trivial SCC;
    the bound is the heaviest root-originating path in the condensation,
    plus one for a trailing text symbol.  This is far tighter than the
    naive ``k * |Sigma|`` on schemas (like XMark) whose recursion is
    confined to a small clique, and equal to it on fully recursive
    schemas (the R-benchmark's ``dn``).
    """
    entries, start = structure
    heaviest: dict[int, int] = {}
    for position, (size, recursive, preds) in enumerate(entries):
        weight = k * size if recursive else size
        if position == start:
            heaviest[position] = weight
        incoming = [heaviest[pred] for pred in preds if pred in heaviest]
        if incoming:
            heaviest[position] = max(
                heaviest.get(position, 0), max(incoming) + weight
            )
    longest = max(heaviest.values(), default=1)
    return longest + 1  # one trailing text symbol


def depth_cap_for(schema: Schema, k: int) -> int:
    """Depth cap: the exact maximum length of a k-chain from the root."""
    return depth_cap_from(recursion_structure(schema), k)


def build_universe(schema: Schema, k: int) -> Universe:
    """The leveled unfolding used by the finite analysis."""
    return Universe(schema, depth_cap_for(schema, k))


def analyze(
    query: Query | str,
    update: Update | str,
    schema: Schema,
    k: int | None = None,
    collect_witnesses: bool = True,
    engine=None,
) -> IndependenceReport:
    """Statically decide independence of ``query`` and ``update`` w.r.t.
    ``schema``.

    Strings are parsed with the surface parsers and ``k`` overrides the
    derived multiplicity (used by the scalability benchmark).  This is a
    thin wrapper over :class:`repro.analysis.engine.AnalysisEngine`:
    pass ``engine`` to amortize universe construction and chain
    inference across many pairs (an engine whose schema does not match
    is replaced by a throwaway one).

    >>> from repro.schema import paper_doc_dtd
    >>> analyze("//a//c", "delete //b//c", paper_doc_dtd()).independent
    True
    """
    from .engine import AnalysisEngine

    if engine is None or not engine.matches(schema):
        engine = AnalysisEngine(schema)
    return engine.analyze_pair(query, update, k=k,
                               collect_witnesses=collect_witnesses)


def check_conflicts(query_chains: QueryChains, update_chains,
                    collect_witnesses: bool = True) -> list[Conflict]:
    """Definition 4.1's three conflict sets, with witnesses.

    * ``confl(r, U)``: a return chain prefixes an update full chain --
      the update changes something inside a returned subtree (this also
      covers intermediate positions ``c.c''`` of the update chain);
    * ``confl(U, r)``: an update full chain prefixes a return chain --
      the returned node sits at or below a changed position;
    * used chains: a used node is affected when its chain strictly
      extends the update's target prefix ``c`` and is comparable with
      the full chain ``c.c'`` -- the inserted/removed subtree *contains*
      the used position (``c.c'' = c_v`` for a prefix ``c''`` of ``c'``,
      the case Section 3 describes) or lies above it.  Plain
      ``full <= c_v`` alone would miss nodes created at intermediate
      suffix positions, e.g. inserting ``<bidder><date/>...</bidder>``
      creates a ``bidder`` node even though no inferred full chain ends
      at ``bidder``.
    """
    conflicts: list[Conflict] = []

    def scan(kind: str, pairs) -> None:
        for a, b, test in pairs:
            if test():
                witness: tuple[str, ...] = ()
                if collect_witnesses:
                    found = conflict_witness(
                        a if kind == "return-update" else getattr(
                            a, "full", a),
                        getattr(b, "full", b),
                    )
                    witness = found if found is not None else ()
                conflicts.append(Conflict(kind, witness))
                if not collect_witnesses:
                    return

    scan("return-update", (
        (a, b, lambda a=a, b=b: components_conflict(a, b.full))
        for a in query_chains.returns for b in update_chains
    ))
    scan("update-return", (
        (a, b, lambda a=a, b=b: components_conflict(a.full, b))
        for a in update_chains for b in query_chains.returns
    ))
    scan("update-used", (
        (a, b, lambda a=a, b=b: used_chain_conflict(a, b))
        for a in update_chains for b in query_chains.used
    ))
    return conflicts


def used_chain_conflict(update_component, used: Component) -> bool:
    """Does the update involve a used position?

    True iff some used chain ``c_v`` strictly extends a target chain
    ``c`` of the update and is comparable (prefix-wise) with the
    corresponding full chain ``c.c'``.  Over components: walk the edges
    shared by both graphs from the root; taking a *suffix* edge (by
    construction leaving a split end) starts the suffix ``c'``, and from
    then on only suffix edges may be followed -- on recursive schemas a
    split end also has non-suffix out-edges that merely lead to deeper
    occurrences of the target, and following those past the split would
    manufacture conflicts Definition 4.1 does not contain.  Reaching a
    used end inside the suffix region, or an update full end from which
    the used graph continues, witnesses the conflict.  Deleting/renaming
    the document root (no split) conflicts with every used chain.
    """
    full = update_component.full
    if full.is_empty() or used.is_empty() or full.root != used.root:
        return False
    # Root-level change (e.g. delete /root): c is empty, so every used
    # chain strictly extends it and lies below the full chain's end.
    if full.root in full.ends and not update_component.split_ends:
        return True
    used_edges = used.edges
    shared: dict = {}
    for edge in full.edges:
        if edge in used_edges:
            shared.setdefault(edge[0], []).append(edge[1])
    suffix_shared: dict = {}
    for edge in update_component.suffix_edges:
        if edge in used_edges:
            suffix_shared.setdefault(edge[0], []).append(edge[1])
    if not suffix_shared:
        return False
    full_ends = full.ends
    used_ends = used.ends
    used_nodes = used.nodes()
    seen: set[tuple] = set()
    stack: list[tuple] = [(full.root, False)]
    while stack:
        state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        node, in_suffix = state
        if in_suffix and (
            node in used_ends
            or (node in full_ends and node in used_nodes)
        ):
            return True
        for succ in suffix_shared.get(node, ()):
            stack.append((succ, True))
        if not in_suffix:
            for succ in shared.get(node, ()):
                stack.append((succ, False))
    return False


def chains_of(components: Components, limit: int = 10_000
              ) -> set[tuple[str, ...]]:
    """Explicit chain enumeration across components (tests/debugging)."""
    chains: set[tuple[str, ...]] = set()
    for component in components:
        chains |= component.enumerate_chains(limit)
    return chains


def is_independent(query: Query | str, update: Update | str,
                   schema: Schema, k: int | None = None) -> bool:
    """Boolean convenience wrapper around :func:`analyze`."""
    return analyze(query, update, schema, k=k,
                   collect_witnesses=False).independent


def __getattr__(name: str):
    # Historical home of AnalysisEngine; the batch engine now lives in
    # repro.analysis.engine (lazy import avoids a module cycle).
    if name == "AnalysisEngine":
        from .engine import AnalysisEngine
        return AnalysisEngine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
