"""The chain-based independence check: ``q  _|_Ckd  u`` (Sections 4-6).

:func:`analyze` is the library's main entry point.  It

1. computes the pair multiplicity ``k = k_q + k_u`` (Table 3) unless an
   explicit ``k`` is given (the R-benchmark overrides it);
2. builds the leveled universe with depth cap ``k * |Sigma| + 2``;
3. infers query chains ``(r; v; e)`` and update chains ``U``;
4. reports independence iff
   ``confl(r, U) = confl(U, r) = confl(U, v) = empty`` (Definition 4.1),
   where ``confl(tau1, tau2)`` holds when some ``tau1``-chain is a prefix
   of some ``tau2``-chain.

Soundness: a verdict of *independent* implies semantic independence
``q |=d u`` (Theorems 4.2 and 5.1).  The converse direction is
undecidable, so a *dependent* verdict may be a false alarm.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..schema.dtd import DTD
from ..schema.edtd import EDTD
from ..xquery.ast import ROOT_VAR, Query
from ..xquery.parser import parse_query
from ..xupdate.ast import Update
from ..xupdate.parser import parse_update
from .cdag import Component, Universe, components_conflict, conflict_witness
from .infer_query import Components, QueryChains, QueryInference
from .infer_update import UpdateInference
from .kbound import multiplicity

Schema = DTD | EDTD


@dataclass(frozen=True)
class Conflict:
    """One witness of chain overlap (why independence was rejected)."""

    kind: str                      # "return-update" | "update-return" | "update-used"
    witness: tuple[str, ...]       # the prefix chain witnessing the overlap

    def __str__(self) -> str:
        return f"{self.kind}: {'.'.join(self.witness)}"


@dataclass(frozen=True)
class IndependenceReport:
    """Outcome of the static analysis for one query-update pair."""

    independent: bool
    k: int
    k_query: int
    k_update: int
    conflicts: tuple[Conflict, ...]
    analysis_seconds: float
    query_chains: QueryChains = field(repr=False, default=None)
    update_chains: Components = field(repr=False, default=None)

    def __str__(self) -> str:
        verdict = "independent" if self.independent else "dependent"
        return (
            f"{verdict} (k={self.k}, kq={self.k_query}, ku={self.k_update}, "
            f"{self.analysis_seconds * 1e3:.2f} ms)"
        )


def depth_cap_for(schema: Schema, k: int) -> int:
    """Depth cap: the exact maximum length of a k-chain from the root.

    A k-chain repeats each tag at most ``k`` times, so along any chain a
    strongly connected component of the type graph contributes at most
    ``k * |SCC|`` symbols if it is recursive and 1 if it is a trivial SCC;
    the bound is the heaviest root-originating path in the condensation,
    plus one for a trailing text symbol.  This is far tighter than the
    naive ``k * |Sigma|`` on schemas (like XMark) whose recursion is
    confined to a small clique, and equal to it on fully recursive
    schemas (the R-benchmark's ``dn``).
    """
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(schema.alphabet)
    for tag in schema.alphabet:
        for child in schema.children_of(tag):
            if child in schema.alphabet:
                graph.add_edge(tag, child)
    condensation = nx.condensation(graph)
    members = condensation.graph["mapping"]

    def weight(scc_id: int) -> int:
        scc = condensation.nodes[scc_id]["members"]
        recursive = len(scc) > 1 or any(
            s in schema.children_of(s) for s in scc
        )
        return k * len(scc) if recursive else len(scc)

    start_scc = members[schema.start]
    heaviest: dict[int, int] = {}
    for scc_id in nx.topological_sort(condensation):
        if scc_id == start_scc:
            heaviest[scc_id] = weight(scc_id)
        incoming = [
            heaviest[pred]
            for pred in condensation.predecessors(scc_id)
            if pred in heaviest
        ]
        if incoming:
            heaviest[scc_id] = max(
                heaviest.get(scc_id, 0), max(incoming) + weight(scc_id)
            )
    longest = max(heaviest.values(), default=1)
    return longest + 1  # one trailing text symbol


def build_universe(schema: Schema, k: int) -> Universe:
    """The leveled unfolding used by the finite analysis."""
    return Universe(schema, depth_cap_for(schema, k))


def analyze(
    query: Query | str,
    update: Update | str,
    schema: Schema,
    k: int | None = None,
    collect_witnesses: bool = True,
    engine: "AnalysisEngine | None" = None,
) -> IndependenceReport:
    """Statically decide independence of ``query`` and ``update`` w.r.t.
    ``schema``.

    Strings are parsed with the surface parsers.  ``k`` overrides the
    derived multiplicity (used by the scalability benchmark); ``engine``
    allows reusing inference caches across many pairs with the same
    ``(schema, k)``.

    >>> from repro.schema import paper_doc_dtd
    >>> analyze("//a//c", "delete //b//c", paper_doc_dtd()).independent
    True
    """
    if isinstance(query, str):
        query = parse_query(query)
    if isinstance(update, str):
        update = parse_update(update)

    started = time.perf_counter()
    k_query = multiplicity(query)
    k_update = multiplicity(update)
    if k is None:
        k = max(1, k_query + k_update)

    if engine is None or engine.k != k or engine.schema is not schema:
        engine = AnalysisEngine(schema, k)

    query_chains = engine.queries.infer_root(query, ROOT_VAR)
    update_chains = engine.updates.infer_root(update, ROOT_VAR)

    conflicts = check_conflicts(query_chains, update_chains,
                                collect_witnesses)
    elapsed = time.perf_counter() - started
    return IndependenceReport(
        independent=not conflicts,
        k=k,
        k_query=k_query,
        k_update=k_update,
        conflicts=tuple(conflicts),
        analysis_seconds=elapsed,
        query_chains=query_chains,
        update_chains=update_chains,
    )


class AnalysisEngine:
    """Reusable inference state for one ``(schema, k)`` configuration."""

    def __init__(self, schema: Schema, k: int):
        self.schema = schema
        self.k = k
        self.universe = build_universe(schema, k)
        self.queries = QueryInference(self.universe)
        self.updates = UpdateInference(self.queries)


def check_conflicts(query_chains: QueryChains, update_chains,
                    collect_witnesses: bool = True) -> list[Conflict]:
    """Definition 4.1's three conflict sets, with witnesses.

    * ``confl(r, U)``: a return chain prefixes an update full chain --
      the update changes something inside a returned subtree (this also
      covers intermediate positions ``c.c''`` of the update chain);
    * ``confl(U, r)``: an update full chain prefixes a return chain --
      the returned node sits at or below a changed position;
    * used chains: a used node is affected when its chain strictly
      extends the update's target prefix ``c`` and is comparable with
      the full chain ``c.c'`` -- the inserted/removed subtree *contains*
      the used position (``c.c'' = c_v`` for a prefix ``c''`` of ``c'``,
      the case Section 3 describes) or lies above it.  Plain
      ``full <= c_v`` alone would miss nodes created at intermediate
      suffix positions, e.g. inserting ``<bidder><date/>...</bidder>``
      creates a ``bidder`` node even though no inferred full chain ends
      at ``bidder``.
    """
    conflicts: list[Conflict] = []

    def scan(kind: str, pairs) -> None:
        for a, b, test in pairs:
            if test():
                witness: tuple[str, ...] = ()
                if collect_witnesses:
                    found = conflict_witness(
                        a if kind == "return-update" else getattr(
                            a, "full", a),
                        getattr(b, "full", b),
                    )
                    witness = found if found is not None else ()
                conflicts.append(Conflict(kind, witness))
                if not collect_witnesses:
                    return

    scan("return-update", (
        (a, b, lambda a=a, b=b: components_conflict(a, b.full))
        for a in query_chains.returns for b in update_chains
    ))
    scan("update-return", (
        (a, b, lambda a=a, b=b: components_conflict(a.full, b))
        for a in update_chains for b in query_chains.returns
    ))
    scan("update-used", (
        (a, b, lambda a=a, b=b: used_chain_conflict(a, b))
        for a in update_chains for b in query_chains.used
    ))
    return conflicts


def used_chain_conflict(update_component, used: Component) -> bool:
    """Does the update involve a used position?

    True iff some used chain ``c_v`` strictly extends a target chain
    ``c`` of the update and is comparable (prefix-wise) with the
    corresponding full chain ``c.c'``.  Over components: walk the shared
    edges of both graphs from the root; once the walk has crossed a
    split node (target end) by at least one edge, reaching either a used
    end inside the update's graph, or an update full end inside the used
    graph, witnesses the conflict.  Deleting/renaming the document root
    (no split) conflicts with every used chain.
    """
    full = update_component.full
    if full.is_empty() or used.is_empty() or full.root != used.root:
        return False
    # Root-level change (e.g. delete /root): c is empty, so every used
    # chain strictly extends it and lies below the full chain's end.
    if full.root in full.ends and not update_component.split_ends:
        return True
    shared: dict = {}
    used_edges = used.edges
    for edge in full.edges:
        if edge in used_edges:
            shared.setdefault(edge[0], []).append(edge[1])
    full_nodes = full.nodes()
    used_nodes = used.nodes()
    splits = update_component.split_ends
    seen: set[tuple] = set()
    stack: list[tuple] = [(full.root, False)]
    while stack:
        state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        node, passed = state
        if passed and (
            (node in used.ends and node in full_nodes)
            or (node in full.ends and node in used_nodes)
        ):
            return True
        next_passed = passed or node in splits
        for succ in shared.get(node, ()):
            stack.append((succ, next_passed))
    return False


def chains_of(components: Components, limit: int = 10_000
              ) -> set[tuple[str, ...]]:
    """Explicit chain enumeration across components (tests/debugging)."""
    chains: set[tuple[str, ...]] = set()
    for component in components:
        chains |= component.enumerate_chains(limit)
    return chains


def is_independent(query: Query | str, update: Update | str,
                   schema: Schema, k: int | None = None) -> bool:
    """Boolean convenience wrapper around :func:`analyze`."""
    return analyze(query, update, schema, k=k,
                   collect_witnesses=False).independent
