"""Step chain inference: ``AC`` (axes) and ``TC`` (node tests), Section 3.1.

Operates on CDAG components.  :func:`step_on_component` computes
``TC(AC(c, axis), phi)`` for all chains ``c`` of a component at once;
:func:`productive_ends` computes the subset of context ends for which the
step result is non-empty (the paper's (STEPUH) used-chain filter, and the
building block of the (FOR) filter).
"""

from __future__ import annotations

from ..xquery.ast import Axis, NodeTest, node_test_matches
from .cdag import (
    Component,
    Node,
    Universe,
    ancestor_step,
    child_step,
    descendant_step,
    filter_ends,
    parent_step,
    self_step,
    sibling_step,
)


def axis_on_component(component: Component, axis: Axis,
                      universe: Universe) -> Component:
    """``AC(c, axis)`` applied to every chain of ``component``."""
    if axis is Axis.SELF:
        return self_step(component)
    if axis is Axis.CHILD:
        return child_step(component, universe)
    if axis is Axis.DESCENDANT:
        return descendant_step(component, universe, or_self=False)
    if axis is Axis.DESCENDANT_OR_SELF:
        return descendant_step(component, universe, or_self=True)
    if axis is Axis.PARENT:
        return parent_step(component)
    if axis is Axis.ANCESTOR:
        return ancestor_step(component, or_self=False)
    if axis is Axis.ANCESTOR_OR_SELF:
        return ancestor_step(component, or_self=True)
    if axis is Axis.FOLLOWING_SIBLING:
        return sibling_step(component, universe, following=True)
    if axis is Axis.PRECEDING_SIBLING:
        return sibling_step(component, universe, following=False)
    raise ValueError(f"unknown axis {axis!r}")


def test_on_component(component: Component, test: NodeTest,
                      universe: Universe) -> Component:
    """``TC(c, phi)``: keep chains whose last symbol's label matches."""
    return filter_ends(
        component,
        lambda end: node_test_matches(test, universe.label(end[1])),
    )


def step_on_component(component: Component, axis: Axis, test: NodeTest,
                      universe: Universe) -> Component:
    """``TC(AC(c, axis), phi)`` over a whole component."""
    return test_on_component(
        axis_on_component(component, axis, universe), test, universe
    )


def productive_ends(component: Component, axis: Axis, test: NodeTest,
                    universe: Universe) -> frozenset[Node]:
    """Ends ``n`` of ``component`` whose step result is non-empty.

    Exact per-end computation; used by the (STEPUH) used-chain filter and
    by the (FOR) filter of Table 1.
    """
    if component.is_empty():
        return frozenset()

    def matches(node: Node) -> bool:
        return node_test_matches(test, universe.label(node[1]))

    if axis is Axis.SELF:
        return frozenset(e for e in component.ends if matches(e))

    if axis is Axis.CHILD:
        return frozenset(
            e for e in component.ends
            if any(matches(s) for s in universe.successors(e))
        )

    if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
        result = set()
        memo: dict[Node, bool] = {}
        for end in component.ends:
            if axis is Axis.DESCENDANT_OR_SELF and matches(end):
                result.add(end)
                continue
            if _has_matching_descendant(end, matches, universe, memo):
                result.add(end)
        return frozenset(result)

    # Upward and horizontal axes need the component's own edges.
    reverse: dict[Node, list[Node]] = {}
    for source, target in component.edges:
        reverse.setdefault(target, []).append(source)

    if axis is Axis.PARENT:
        return frozenset(
            e for e in component.ends
            if any(matches(p) for p in reverse.get(e, ()))
        )

    if axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
        result = set()
        for end in component.ends:
            if axis is Axis.ANCESTOR_OR_SELF and matches(end):
                result.add(end)
                continue
            seen: set[Node] = set()
            frontier = list(reverse.get(end, ()))
            found = False
            while frontier and not found:
                node = frontier.pop()
                if node in seen:
                    continue
                seen.add(node)
                if matches(node):
                    found = True
                    break
                frontier.extend(reverse.get(node, ()))
            if found:
                result.add(end)
        return frozenset(result)

    if axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
        following = axis is Axis.FOLLOWING_SIBLING
        result = set()
        for end in component.ends:
            symbol = end[1]
            for parent in reverse.get(end, ()):
                order = universe.schema.sibling_order(parent[1])
                if following:
                    siblings = {b for (a, b) in order if a == symbol}
                else:
                    siblings = {a for (a, b) in order if b == symbol}
                if any(matches((end[0], s)) for s in siblings):
                    result.add(end)
                    break
        return frozenset(result)

    raise ValueError(f"unknown axis {axis!r}")


def _has_matching_descendant(node: Node, matches, universe: Universe,
                             memo: dict[Node, bool]) -> bool:
    """Iterative memoized DFS (levels only increase, so the graph is acyclic)."""
    cached = memo.get(node)
    if cached is not None:
        return cached
    stack: list[tuple[Node, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if current in memo:
            continue
        if expanded:
            memo[current] = any(
                matches(s) or memo.get(s, False)
                for s in universe.successors(current)
            )
            continue
        stack.append((current, True))
        for succ in universe.successors(current):
            if succ not in memo and not matches(succ):
                stack.append((succ, False))
    return memo[node]
