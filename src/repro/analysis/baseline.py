"""The type-based baseline: schema analysis of Benedikt & Cheney [6].

Reimplementation of the comparison system (VLDB 2009): it infers the *set
of node types* traversed by the query and the set of node types impacted
by the update, and declares independence iff the two sets are disjoint.
Types carry no context, so the analysis cannot distinguish ``//a//c``
from ``//b//c`` (both trace type ``c``) -- the paper's q1/u1 example --
nor tell that an ``author`` inserted into ``book`` cannot touch
``//title`` (both expressions trace type ``book``) -- the q2/u2 example.

Axis typing is deliberately context-free, mirroring the over-approximation
the paper attributes to [6] (Sections 1 and 8):

* ``ancestor``/``parent`` from type ``t`` yields *every* type that can
  reach ``t``, regardless of the path actually navigated;
* sibling axes yield every type co-occurring in some content model with
  ``t``, with no order information.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..schema.dtd import DTD
from ..schema.edtd import EDTD
from ..schema.regex import TEXT_SYMBOL
from ..xquery.ast import (
    ROOT_VAR,
    Axis,
    TextTest,
    Concat,
    Element,
    Empty,
    For,
    If,
    Let,
    Query,
    Step,
    StringLit,
    free_variables,
    node_test_matches,
)
from ..xquery.parser import parse_query
from ..xupdate.ast import (
    Delete,
    Insert,
    Rename,
    Replace,
    UConcat,
    UEmpty,
    UFor,
    UIf,
    ULet,
    Update,
)
from ..xupdate.parser import parse_update

Schema = DTD | EDTD
TypeSet = frozenset[str]
TypeEnv = dict[str, TypeSet]

EMPTY_TYPES: TypeSet = frozenset()


@dataclass(frozen=True)
class TypeTriple:
    """Type-level analogue of the ``(r; v; e)`` triple."""

    returns: TypeSet
    used: TypeSet
    elements: TypeSet

    def has_output(self) -> bool:
        return bool(self.returns or self.elements)


@dataclass(frozen=True)
class BaselineReport:
    """Verdict of the type-based analysis for one pair."""

    independent: bool
    accessed: TypeSet
    impacted: TypeSet
    analysis_seconds: float

    @property
    def overlap(self) -> TypeSet:
        return self.accessed & self.impacted


class TypeAnalysis:
    """Type-set inference engine for one schema."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._ancestors: dict[str, TypeSet] = {}

    # -- axis typing (context-free) ----------------------------------------

    def _parents_of(self, symbol: str) -> TypeSet:
        return frozenset(
            t for t in self.schema.alphabet
            if symbol in self.schema.children_of(t)
        )

    def _ancestors_of(self, symbol: str) -> TypeSet:
        cached = self._ancestors.get(symbol)
        if cached is None:
            cached = frozenset(
                t for t in self.schema.alphabet
                if symbol in self.schema.descendants_of(t)
            )
            self._ancestors[symbol] = cached
        return cached

    def _siblings_of(self, symbol: str) -> TypeSet:
        result: set[str] = set()
        for parent in self._parents_of(symbol):
            result |= self.schema.children_of(parent)
        return frozenset(result)

    def axis_types(self, context: TypeSet, axis: Axis) -> TypeSet:
        if axis is Axis.SELF:
            return context
        if axis is Axis.CHILD:
            result: set[str] = set()
            for t in context:
                result |= self.schema.children_of(t)
            return frozenset(result) - {TEXT_SYMBOL}
        if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            result = set(context) if axis is Axis.DESCENDANT_OR_SELF else set()
            for t in context:
                result |= self.schema.descendants_of(t)
            return frozenset(result) - {TEXT_SYMBOL}
        if axis is Axis.PARENT:
            result = set()
            for t in context:
                result |= self._parents_of(t)
            return frozenset(result)
        if axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
            result = set(context) if axis is Axis.ANCESTOR_OR_SELF else set()
            for t in context:
                result |= self._ancestors_of(t)
            return frozenset(result)
        if axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
            result = set()
            for t in context:
                result |= self._siblings_of(t)
            return frozenset(result)
        raise ValueError(f"unknown axis {axis!r}")

    def step_types(self, context: TypeSet, step: Step) -> TypeSet:
        if isinstance(step.test, TextTest):
            # [6]-style typing: a text node carries its parent's element
            # type, so the string pseudo-type never enters the analysis.
            base = self._text_step_base(context, step.axis)
            return frozenset(
                t for t in base
                if TEXT_SYMBOL in self.schema.children_of(t)
            )
        return frozenset(
            t for t in self.axis_types(context, step.axis)
            if node_test_matches(step.test, self._label(t))
        )

    def _text_step_base(self, context: TypeSet, axis: Axis) -> TypeSet:
        if axis in (Axis.SELF, Axis.CHILD):
            return context
        if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            return context | self.descendants_closure(context)
        if axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
            return self.axis_types(context, Axis.PARENT)
        return self.axis_types(context, axis)

    def _label(self, symbol: str) -> str:
        if isinstance(self.schema, EDTD):
            return self.schema.label_of(symbol)
        return symbol

    def descendants_closure(self, types: TypeSet) -> TypeSet:
        result = set(types)
        for t in types:
            result |= self.schema.descendants_of(t)
        return frozenset(result) - {TEXT_SYMBOL}

    # -- query typing ------------------------------------------------------

    def infer_query(self, query: Query, env: TypeEnv) -> TypeTriple:
        if isinstance(query, Empty):
            return TypeTriple(EMPTY_TYPES, EMPTY_TYPES, EMPTY_TYPES)
        if isinstance(query, StringLit):
            # Text content is typed by its enclosing element in this
            # analysis, so a bare string contributes no type of its own.
            return TypeTriple(EMPTY_TYPES, EMPTY_TYPES, EMPTY_TYPES)
        if isinstance(query, Concat):
            left = self.infer_query(query.left, env)
            right = self.infer_query(query.right, env)
            return TypeTriple(
                left.returns | right.returns,
                left.used | right.used,
                left.elements | right.elements,
            )
        if isinstance(query, If):
            cond = self.infer_query(query.cond, env)
            then = self.infer_query(query.then, env)
            orelse = self.infer_query(query.orelse, env)
            return TypeTriple(
                then.returns | orelse.returns,
                cond.used | then.used | orelse.used | cond.returns,
                then.elements | orelse.elements,
            )
        if isinstance(query, Step):
            context = env.get(query.var, EMPTY_TYPES)
            result = self.step_types(context, query)
            if query.axis.is_forward_downward:
                return TypeTriple(result, EMPTY_TYPES, EMPTY_TYPES)
            # [6]-style coarseness: every context type of an upward or
            # horizontal step counts as accessed (no per-type filtering).
            return TypeTriple(result, context, EMPTY_TYPES)
        if isinstance(query, For):
            source = self.infer_query(query.source, env)
            inner = dict(env)
            inner[query.var] = source.returns
            body = self.infer_query(query.body, inner)
            productive = self._productive_types(
                query.body, query.var, source.returns, inner
            )
            used = source.used
            if productive:
                used = used | productive | body.used
            return TypeTriple(body.returns, used, body.elements)
        if isinstance(query, Let):
            source = self.infer_query(query.source, env)
            inner = dict(env)
            inner[query.var] = source.returns
            body = self.infer_query(query.body, inner)
            return TypeTriple(
                body.returns,
                source.returns | source.used | body.used,
                body.elements,
            )
        if isinstance(query, Element):
            inner = self.infer_query(query.content, env)
            elements = frozenset((query.tag,)) | inner.returns | \
                self.descendants_closure(inner.returns) | inner.elements
            used = inner.used | self.descendants_closure(inner.returns)
            return TypeTriple(EMPTY_TYPES, used, elements)
        raise ValueError(f"unknown query node {query!r}")

    def _productive_types(self, body: Query, var: str, source: TypeSet,
                          env: TypeEnv) -> TypeSet:
        """Source types whose iteration can produce output (FOR filter)."""
        if var not in free_variables(body):
            return source if self.infer_query(body, env).has_output() \
                else EMPTY_TYPES
        if isinstance(body, Step):
            return frozenset(
                t for t in source
                if self.step_types(frozenset((t,)), body)
            )
        if isinstance(body, (StringLit, Element)):
            return source
        if isinstance(body, Empty):
            return EMPTY_TYPES
        if isinstance(body, Concat):
            return self._productive_types(body.left, var, source, env) | \
                self._productive_types(body.right, var, source, env)
        if isinstance(body, If):
            return self._productive_types(body.then, var, source, env) | \
                self._productive_types(body.orelse, var, source, env)
        if isinstance(body, For):
            first = self._productive_or_all(body.source, var, source, env)
            inner = dict(env)
            inner[body.var] = self.infer_query(body.source, env).returns
            second = self._productive_or_all(body.body, var, source, inner)
            return first & second
        if isinstance(body, Let):
            inner = dict(env)
            inner[body.var] = self.infer_query(body.source, env).returns
            return self._productive_or_all(body.body, var, source, inner)
        raise ValueError(f"unknown query node {body!r}")

    def _productive_or_all(self, query: Query, var: str, source: TypeSet,
                           env: TypeEnv) -> TypeSet:
        if var in free_variables(query):
            return self._productive_types(query, var, source, env)
        return source if self.infer_query(query, env).has_output() \
            else EMPTY_TYPES

    # -- update typing -----------------------------------------------------

    def infer_update(self, update: Update, env: TypeEnv) -> TypeSet:
        """Types impacted by the update."""
        if isinstance(update, UEmpty):
            return EMPTY_TYPES
        if isinstance(update, UConcat):
            return self.infer_update(update.left, env) | \
                self.infer_update(update.right, env)
        if isinstance(update, (UFor, ULet)):
            source = self.infer_query(update.source, env)
            inner = dict(env)
            inner[update.var] = source.returns
            return self.infer_update(update.body, inner)
        if isinstance(update, UIf):
            return self.infer_update(update.then, env) | \
                self.infer_update(update.orelse, env)
        if isinstance(update, Delete):
            target = self.infer_query(update.target, env).returns
            return (target | self.descendants_closure(target)
                    | self.axis_types(target, Axis.PARENT))
        if isinstance(update, Rename):
            target = self.infer_query(update.target, env).returns
            return (target | frozenset((update.tag,))
                    | self.axis_types(target, Axis.PARENT))
        if isinstance(update, Insert):
            source = self.infer_query(update.source, env)
            target = self.infer_query(update.target, env).returns
            inserted = source.elements | \
                self.descendants_closure(source.returns)
            if update.pos.is_into:
                anchor = target
            else:
                anchor = self.axis_types(target, Axis.PARENT)
            return anchor | inserted
        if isinstance(update, Replace):
            source = self.infer_query(update.source, env)
            target = self.infer_query(update.target, env).returns
            inserted = source.elements | \
                self.descendants_closure(source.returns)
            return (target | self.descendants_closure(target) | inserted
                    | self.axis_types(target, Axis.PARENT))
        raise ValueError(f"unknown update node {update!r}")


def baseline_analyze(query: Query | str, update: Update | str,
                     schema: Schema) -> BaselineReport:
    """Run the type-based baseline on one pair.

    >>> from repro.schema import paper_doc_dtd
    >>> baseline_analyze("//a//c", "delete //b//c", paper_doc_dtd()).independent
    False
    """
    if isinstance(query, str):
        query = parse_query(query)
    if isinstance(update, str):
        update = parse_update(update)
    started = time.perf_counter()
    analysis = TypeAnalysis(schema)
    env: TypeEnv = {ROOT_VAR: frozenset((schema.start,))}
    triple = analysis.infer_query(query, env)
    accessed = (
        triple.returns
        | analysis.descendants_closure(triple.returns)
        | triple.used
        | frozenset((schema.start,))
    )
    impacted = analysis.infer_update(update, env)
    elapsed = time.perf_counter() - started
    return BaselineReport(
        independent=not (accessed & impacted),
        accessed=accessed,
        impacted=impacted,
        analysis_seconds=elapsed,
    )


def baseline_is_independent(query: Query | str, update: Update | str,
                            schema: Schema) -> bool:
    """Boolean convenience wrapper."""
    return baseline_analyze(query, update, schema).independent
