"""Chain-DAG (CDAG) representation of inferred chain sets (Section 6.1).

Explicit chain sets blow up exponentially on recursive schemas (the
paper's footnote 8), so -- like the paper's implementation -- chain sets
are represented over a *leveled unfolding* of the DTD type graph:

* a :data:`Node` is a pair ``(depth, symbol)``; the paper's CDAG property
  "at most one CDAG-node of type alpha at distance h from the root" holds
  by construction;
* a :class:`Component` is a rooted sub-DAG ``(root, edges, ends)`` whose
  denoted chain set is *all root-to-end paths*;
* an inferred chain set is a tuple of components.  Components are never
  merged across inference sites: a component is the provenance unit
  playing the role of the paper's edge *codes*, preventing the
  cross-expression path-mixing artifacts of Figure 2.

The depth cap is ``k * |Sigma| + 1``: a k-chain repeats each of the
``|Sigma|`` tags at most ``k`` times, plus one trailing text symbol
(which has no children, so it appears at most once, last).

All operations used by the inference rules are defined here as pure
functions over components; each is a direct transliteration of the
corresponding ``AC``/closure definition of Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..schema.dtd import DTD
from ..schema.edtd import EDTD

#: A CDAG node: (depth from the root, chain symbol at that depth).
Node = tuple[int, str]

Edge = tuple[Node, Node]

Schema = DTD | EDTD


class Universe:
    """The leveled unfolding of a schema's type graph, up to a depth cap.

    ``depth_cap`` is the maximum chain *length* (number of symbols); node
    depths range over ``0 .. depth_cap - 1``.
    """

    def __init__(self, schema: Schema, depth_cap: int):
        if depth_cap < 1:
            raise ValueError("depth_cap must be at least 1")
        self.schema = schema
        self.depth_cap = depth_cap
        self._successors: dict[Node, list[Node]] = {}

    def root(self) -> Node:
        return (0, self.schema.start)

    def successors(self, node: Node) -> list[Node]:
        """Universe edges out of ``node`` (empty at the depth cap).

        Memoized per node: the universe is immutable and successor lists
        are requested on every axis step, so the answer is computed once
        per (depth, symbol) and shared across all inferences that reuse
        this universe.
        """
        cached = self._successors.get(node)
        if cached is not None:
            return cached
        depth, symbol = node
        if depth + 1 >= self.depth_cap:
            result: list[Node] = []
        else:
            result = [(depth + 1, child)
                      for child in self.schema.children_of(symbol)]
        self._successors[node] = result
        return result

    def label(self, symbol: str) -> str:
        """Element label of a chain symbol (EDTD: via mu; DTD: identity)."""
        if isinstance(self.schema, EDTD):
            return self.schema.label_of(symbol)
        return symbol

    def descendant_nodes(self, start: Node) -> set[Node]:
        """All nodes strictly below ``start`` reachable via universe edges."""
        seen: set[Node] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for succ in self.successors(node):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen


@dataclass(frozen=True)
class Component:
    """A rooted sub-DAG denoting the set of all root-to-end paths.

    Invariant (established by :func:`make_component`): every edge lies on
    some root-to-end path and every end is reachable from the root.

    ``constructed`` marks element components (chains of newly built
    elements, rooted at the constructed tag rather than the schema start).
    """

    root: Node
    edges: frozenset[Edge]
    ends: frozenset[Node]
    constructed: bool = False

    def is_empty(self) -> bool:
        """True iff the component denotes no chain at all."""
        return not self.ends

    def nodes(self) -> frozenset[Node]:
        """All nodes on some root-to-end path (memoized: conflict tests
        ask repeatedly and the component is immutable)."""
        cached = self.__dict__.get("_nodes")
        if cached is not None:
            return cached
        if self.is_empty():
            found = frozenset()
        else:
            mutable: set[Node] = {self.root} | set(self.ends)
            for source, target in self.edges:
                mutable.add(source)
                mutable.add(target)
            found = frozenset(mutable)
        object.__setattr__(self, "_nodes", found)
        return found

    # -- debugging / tests -------------------------------------------------

    def enumerate_chains(self, limit: int = 10_000
                         ) -> set[tuple[str, ...]]:
        """Explicitly enumerate denoted chains (tests only; capped).

        Raises :class:`ChainExplosion` if more than ``limit`` chains exist.
        """
        if self.is_empty():
            return set()
        adjacency: dict[Node, list[Node]] = {}
        for source, target in self.edges:
            adjacency.setdefault(source, []).append(target)
        chains: set[tuple[str, ...]] = set()
        stack: list[tuple[Node, tuple[str, ...]]] = [
            (self.root, (self.root[1],))
        ]
        while stack:
            node, prefix = stack.pop()
            if node in self.ends:
                chains.add(prefix)
                if len(chains) > limit:
                    raise ChainExplosion(
                        f"component denotes more than {limit} chains"
                    )
            for succ in adjacency.get(node, ()):
                stack.append((succ, prefix + (succ[1],)))
        return chains


class ChainExplosion(RuntimeError):
    """Raised when explicit enumeration exceeds its cap."""


EMPTY_COMPONENT = Component((0, ""), frozenset(), frozenset())


def make_component(root: Node, edges: frozenset[Edge] | set[Edge],
                   ends: frozenset[Node] | set[Node],
                   constructed: bool = False) -> Component:
    """Build a trimmed component (establishes the class invariant)."""
    if not ends:
        return EMPTY_COMPONENT
    forward: set[Node] = {root}
    adjacency: dict[Node, list[Node]] = {}
    reverse: dict[Node, list[Node]] = {}
    for source, target in edges:
        adjacency.setdefault(source, []).append(target)
        reverse.setdefault(target, []).append(source)
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for succ in adjacency.get(node, ()):
            if succ not in forward:
                forward.add(succ)
                frontier.append(succ)
    live_ends = frozenset(e for e in ends if e in forward)
    if not live_ends:
        return EMPTY_COMPONENT
    backward: set[Node] = set(live_ends)
    frontier = list(live_ends)
    while frontier:
        node = frontier.pop()
        for pred in reverse.get(node, ()):
            if pred not in backward:
                backward.add(pred)
                frontier.append(pred)
    useful = forward & backward
    kept = frozenset(
        (s, t) for (s, t) in edges if s in useful and t in useful
    )
    return Component(root, kept, live_ends, constructed)


def singleton_component(root: Node, constructed: bool = False) -> Component:
    """The component denoting exactly the one-symbol chain at ``root``."""
    return Component(root, frozenset(), frozenset((root,)), constructed)


def trim_to_ends(component: Component, ends: set[Node] | frozenset[Node]
                 ) -> Component:
    """Re-target a *trimmed* component at a subset of its nodes.

    Cheaper than :func:`make_component`: every node of a trimmed
    component is root-reachable already, so only the backward
    (co-reachability) pass is needed.  ``ends`` must be existing nodes
    of ``component`` -- end filters, node tests, and the parent/ancestor
    steps are all of this shape, making this the hottest trim in chain
    inference.
    """
    live = frozenset(ends)
    if not live:
        return EMPTY_COMPONENT
    if live == component.ends:
        return component
    reverse: dict[Node, list[Node]] = {}
    for source, target in component.edges:
        reverse.setdefault(target, []).append(source)
    backward: set[Node] = set(live)
    frontier = list(live)
    while frontier:
        node = frontier.pop()
        for pred in reverse.get(node, ()):
            if pred not in backward:
                backward.add(pred)
                frontier.append(pred)
    kept = frozenset(
        (s, t) for (s, t) in component.edges
        if s in backward and t in backward
    )
    return Component(component.root, kept, live, component.constructed)


# ---------------------------------------------------------------------------
# Axis steps over components (the AC definitions of Section 3.1)
# ---------------------------------------------------------------------------


def child_step(component: Component, universe: Universe) -> Component:
    """``AC(c, child) = { c.alpha | c.alpha in C }``."""
    if component.is_empty():
        return EMPTY_COMPONENT
    new_edges: set[Edge] = set(component.edges)
    new_ends: set[Node] = set()
    for end in component.ends:
        for succ in universe.successors(end):
            new_edges.add((end, succ))
            new_ends.add(succ)
    return make_component(component.root, new_edges, new_ends,
                          component.constructed)


def descendant_step(component: Component, universe: Universe,
                    or_self: bool) -> Component:
    """``AC(c, descendant[-or-self])``: all extensions within the cap."""
    if component.is_empty():
        return EMPTY_COMPONENT
    new_edges: set[Edge] = set(component.edges)
    new_ends: set[Node] = set(component.ends) if or_self else set()
    seen: set[Node] = set(component.ends)
    frontier = list(component.ends)
    while frontier:
        node = frontier.pop()
        for succ in universe.successors(node):
            new_edges.add((node, succ))
            new_ends.add(succ)
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    if or_self:
        # No trimming needed: old nodes stay on root-to-(old end) paths
        # and every newly added node is itself an end.
        return Component(component.root, frozenset(new_edges),
                         frozenset(new_ends), component.constructed)
    return make_component(component.root, new_edges, new_ends,
                          component.constructed)


def parent_step(component: Component) -> Component:
    """``AC(c, parent) = { c' | c = c'.alpha }``."""
    if component.is_empty():
        return EMPTY_COMPONENT
    new_ends = {
        source for (source, target) in component.edges
        if target in component.ends
    }
    return trim_to_ends(component, new_ends)


def ancestor_step(component: Component, or_self: bool) -> Component:
    """``AC(c, ancestor[-or-self])``: all (proper) prefixes."""
    if component.is_empty():
        return EMPTY_COMPONENT
    reverse: dict[Node, list[Node]] = {}
    for source, target in component.edges:
        reverse.setdefault(target, []).append(source)
    strict: set[Node] = set()
    frontier = list(component.ends)
    while frontier:
        node = frontier.pop()
        for pred in reverse.get(node, ()):
            if pred not in strict:
                strict.add(pred)
                frontier.append(pred)
    new_ends = strict | set(component.ends) if or_self else strict
    return trim_to_ends(component, new_ends)


def self_step(component: Component) -> Component:
    """``AC(c, self) = { c }``."""
    return component


def sibling_step(component: Component, universe: Universe,
                 following: bool) -> Component:
    """``AC(c, following/preceding-sibling)`` via the ``<r`` relation.

    For a chain ``c1.alpha``, siblings are ``c1.beta`` with
    ``alpha <d(c1) beta`` (following) or ``beta <d(c1) alpha`` (preceding).
    The parent symbol is read off the in-edges of each end; root-level
    ends have no siblings.
    """
    if component.is_empty():
        return EMPTY_COMPONENT
    reverse: dict[Node, list[Node]] = {}
    for source, target in component.edges:
        reverse.setdefault(target, []).append(source)
    new_edges: set[Edge] = set(component.edges)
    new_ends: set[Node] = set()
    for end in component.ends:
        depth, symbol = end
        for parent in reverse.get(end, ()):
            order = universe.schema.sibling_order(parent[1])
            if following:
                sibling_symbols = {b for (a, b) in order if a == symbol}
            else:
                sibling_symbols = {a for (a, b) in order if b == symbol}
            for sibling in sibling_symbols:
                node = (depth, sibling)
                new_edges.add((parent, node))
                new_ends.add(node)
    return make_component(component.root, new_edges, new_ends,
                          component.constructed)


def filter_ends(component: Component, predicate) -> Component:
    """Keep only ends whose node satisfies ``predicate`` (node tests)."""
    if component.is_empty():
        return EMPTY_COMPONENT
    kept = {end for end in component.ends if predicate(end)}
    return trim_to_ends(component, kept)


def restrict_to_ends(component: Component, ends: set[Node]) -> Component:
    """Sub-component of paths reaching one of ``ends``."""
    if component.is_empty():
        return EMPTY_COMPONENT
    return trim_to_ends(component, set(ends) & component.ends)


def descendant_closure(component: Component, universe: Universe) -> Component:
    """The paper's ``tau-bar``: all extensions ``c.c'`` with ``c' in C``,
    including ``c`` itself (descendant-or-self closure)."""
    return descendant_step(component, universe, or_self=True)


def shift_component(component: Component, delta: int) -> Component:
    """Shift every node depth by ``delta`` (suffix grafting helper)."""
    if component.is_empty():
        return EMPTY_COMPONENT

    def move(node: Node) -> Node:
        return (node[0] + delta, node[1])

    return Component(
        move(component.root),
        frozenset((move(s), move(t)) for (s, t) in component.edges),
        frozenset(move(e) for e in component.ends),
        component.constructed,
    )


def graft(prefix: Component, end: Node, suffix: Component) -> Component:
    """Full-chain component: ``prefix``-paths to ``end`` extended by
    ``suffix``-chains grafted below ``end``.

    The suffix (rooted at depth 0) is depth-shifted to start right below
    ``end``; the result's chains are exactly
    ``{ p . s | p in prefix ending at end, s in suffix }``.
    """
    if prefix.is_empty() or suffix.is_empty():
        return EMPTY_COMPONENT
    trimmed = restrict_to_ends(prefix, {end})
    if trimmed.is_empty():
        return EMPTY_COMPONENT
    shifted = shift_component(suffix, end[0] + 1)
    edges = set(trimmed.edges) | set(shifted.edges)
    edges.add((end, shifted.root))
    return make_component(trimmed.root, edges, shifted.ends,
                          prefix.constructed or suffix.constructed)


# ---------------------------------------------------------------------------
# Prefix-conflict test (Definition 4.1 over components)
# ---------------------------------------------------------------------------


def components_conflict(first: Component, second: Component) -> bool:
    """Does some chain of ``first`` prefix some chain of ``second``?

    Exact over component path semantics: a witness is a path from the
    common root through edges present in *both* components, stopping at an
    end of ``first`` that is live in ``second`` (every node of a trimmed
    component lies on a root-to-end path, so the walked prefix always
    extends to a full ``second``-chain).
    """
    if first.is_empty() or second.is_empty():
        return False
    if first.root != second.root:
        return False
    second_nodes = second.nodes()
    shared: dict[Node, list[Node]] = {}
    second_edges = second.edges
    for edge in first.edges:
        if edge in second_edges:
            shared.setdefault(edge[0], []).append(edge[1])
    reachable: set[Node] = {first.root}
    frontier = [first.root]
    while frontier:
        node = frontier.pop()
        for succ in shared.get(node, ()):
            if succ not in reachable:
                reachable.add(succ)
                frontier.append(succ)
    return any(
        end in reachable and end in second_nodes for end in first.ends
    )


def conflict_witness(first: Component, second: Component
                     ) -> tuple[str, ...] | None:
    """A witness chain of ``first`` prefixing a ``second``-chain, if any."""
    if first.is_empty() or second.is_empty() or first.root != second.root:
        return None
    second_nodes = second.nodes()
    shared: dict[Node, list[Node]] = {}
    for edge in first.edges:
        if edge in second.edges:
            shared.setdefault(edge[0], []).append(edge[1])
    # BFS remembering one path per node.
    paths: dict[Node, tuple[str, ...]] = {first.root: (first.root[1],)}
    frontier = [first.root]
    while frontier:
        node = frontier.pop()
        if node in first.ends and node in second_nodes:
            return paths[node]
        for succ in shared.get(node, ()):
            if succ not in paths:
                paths[succ] = paths[node] + (succ[1],)
                frontier.append(succ)
    return None
