"""Batch independence engine: one schema compilation, many verdicts.

The paper's promise is that the static analysis is cheap enough to run
ahead of *every* update against *every* materialized view.  The one-shot
:func:`~repro.analysis.independence.analyze` entry point re-derives the
k-indexed universe, the chain DAG, and both inference tables on each
call; :class:`AnalysisEngine` amortizes all of that across a workload:

* the leveled universe and the query/update inference tables are built
  once per ``(schema_digest, k)`` and cached on the engine;
* parsed ASTs, multiplicities, and inferred chain sets are cached per
  normalized source text (or per structurally-equal AST node), so a view
  analyzed against a thousand updates pays its inference cost once;
* whole-pair verdicts are memoized, so repeated update *shapes* (the
  common case in an update stream) are O(dict lookup);
* :meth:`AnalysisEngine.analyze_matrix` can fan a query x update grid
  out over a :mod:`concurrent.futures` process pool in chunked work
  units, each worker holding its own engine rebuilt from the schema's
  canonical spec.

:func:`engine_for` is a process-wide registry keyed by schema digest so
independent subsystems (view cache, scheduler, CLI) share one engine per
schema; a changed schema yields a changed digest and therefore a fresh
engine -- stale caches cannot leak across schema versions.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..obs.metrics import (
    ENGINE_INFERENCE_SECONDS,
    ENGINE_STORE_SECONDS,
    ENGINE_UNIVERSE_SECONDS,
)
from ..obs.plan import clip, current_plan
from ..obs.plan import decision as plan_decision
from ..schema.dtd import DTD
from ..schema.edtd import EDTD
from ..xquery.ast import ROOT_VAR, Query
from ..xquery.parser import parse_query
from ..xupdate.ast import Update
from ..xupdate.parser import parse_update
from .cdag import Universe
from .independence import (
    Conflict,
    IndependenceReport,
    RecursionStructure,
    check_conflicts,
    depth_cap_from,
    recursion_structure,
)
from .infer_query import QueryChains, QueryInference
from .infer_update import UpdateInference
from .kbound import multiplicity

Schema = DTD | EDTD


# ---------------------------------------------------------------------------
# Canonical schema identity
# ---------------------------------------------------------------------------


def schema_spec(schema: Schema) -> tuple:
    """A canonical, hashable description of a schema's content.

    Content models are rendered via the regex nodes' structural
    ``repr`` (dataclass reprs are injective and total, unlike the
    surface syntax, which cannot express some nested epsilons).  The
    spec is the digest input; process-pool workers receive the schema
    itself, which pickles since every AST/regex node carries slot-aware
    ``__getstate__``/``__setstate__``.
    """
    if isinstance(schema, EDTD):
        core = schema.core
        labeling = tuple(
            (t, schema.label_of(t)) for t in sorted(core.alphabet)
        )
        return ("edtd", core.start,
                tuple(sorted(
                    (tag, repr(model))
                    for tag, model in core.rules.items()
                )),
                labeling)
    return ("dtd", schema.start,
            tuple(sorted(
                (tag, repr(model))
                for tag, model in schema.rules.items()
            )))


def schema_digest(schema: Schema) -> str:
    """Content hash identifying a schema across instances and processes."""
    return hashlib.sha256(repr(schema_spec(schema)).encode()).hexdigest()


def normalize_source(text: str) -> str:
    """Whitespace-insensitive cache key for surface query/update text.

    Whitespace inside string literals is significant (two queries
    differing only inside quotes are different expressions), so only
    runs of whitespace *outside* quotes collapse to one space.

    >>> normalize_source("delete   //price")
    'delete //price'
    >>> normalize_source('//a[text()  =  "x  y"]')
    '//a[text() = "x  y"]'
    """
    out: list[str] = []
    quote: str | None = None
    pending_space = False
    for ch in text:
        if quote is not None:
            out.append(ch)
            if ch == quote:
                quote = None
        elif ch in "\"'":
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(ch)
            quote = ch
        elif ch.isspace():
            pending_space = True
        else:
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(ch)
    return "".join(out)


# ---------------------------------------------------------------------------
# Results and accounting
# ---------------------------------------------------------------------------


@dataclass
class EngineStats:
    """Cache accounting for one engine (hits are amortization wins).

    ``pair_hits``/``pair_misses``/``pair_evictions`` track the bounded
    in-memory verdict memo; the ``store_*`` counters track the optional
    persistent verdict store (see :meth:`AnalysisEngine.attach_store`),
    whose hits skip chain inference entirely.
    """

    universes_built: int = 0
    query_hits: int = 0
    query_misses: int = 0
    update_hits: int = 0
    update_misses: int = 0
    pair_hits: int = 0
    pair_misses: int = 0
    pair_evictions: int = 0
    expr_evictions: int = 0
    store_hits: int = 0
    store_misses: int = 0
    store_writes: int = 0

    @property
    def chain_hit_ratio(self) -> float:
        """Fraction of chain-inference lookups served from cache."""
        hits = self.query_hits + self.update_hits
        total = hits + self.query_misses + self.update_misses
        return hits / total if total else 0.0

    @property
    def pair_hit_ratio(self) -> float:
        """Fraction of pair verdicts served from the in-memory memo."""
        total = self.pair_hits + self.pair_misses
        return self.pair_hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-ready snapshot (the ``/stats`` endpoint payload)."""
        return {
            "universes_built": self.universes_built,
            "query_hits": self.query_hits,
            "query_misses": self.query_misses,
            "update_hits": self.update_hits,
            "update_misses": self.update_misses,
            "pair_hits": self.pair_hits,
            "pair_misses": self.pair_misses,
            "pair_evictions": self.pair_evictions,
            "expr_evictions": self.expr_evictions,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "store_writes": self.store_writes,
            "chain_hit_ratio": self.chain_hit_ratio,
            "pair_hit_ratio": self.pair_hit_ratio,
        }


#: Historical name (pre-serve) for :class:`EngineStats`.
CacheStats = EngineStats


@dataclass(frozen=True)
class PairVerdict:
    """Slim per-pair outcome used by matrix results (picklable, chain-free)."""

    independent: bool
    k: int
    k_query: int
    k_update: int
    analysis_seconds: float


@dataclass(frozen=True)
class MatrixResult:
    """Verdict grid of ``analyze_matrix``: rows are queries, columns updates."""

    grid: tuple[tuple[PairVerdict, ...], ...]
    wall_seconds: float
    processes: int = 1

    @property
    def shape(self) -> tuple[int, int]:
        """The grid's ``(rows, columns)`` = ``(queries, updates)``."""
        return (len(self.grid), len(self.grid[0]) if self.grid else 0)

    @property
    def pairs(self) -> int:
        """Total number of analyzed ``(query, update)`` pairs."""
        rows, cols = self.shape
        return rows * cols

    @property
    def independent_pairs(self) -> int:
        """How many pairs the analysis proved independent."""
        return sum(v.independent for row in self.grid for v in row)

    @property
    def amortized_seconds(self) -> float:
        """Wall-clock cost per pair (the paper-facing headline number)."""
        return self.wall_seconds / self.pairs if self.pairs else 0.0

    def verdict(self, row: int, col: int) -> PairVerdict:
        """The slim verdict for ``queries[row]`` vs ``updates[col]``."""
        return self.grid[row][col]

    def independent(self, row: int, col: int) -> bool:
        """Shorthand: is ``queries[row]`` independent of ``updates[col]``?"""
        return self.grid[row][col].independent

    def verdict_rows(self) -> tuple[tuple[bool, ...], ...]:
        """Plain boolean grid (row-major, queries x updates)."""
        return tuple(
            tuple(v.independent for v in row) for row in self.grid
        )


def _slim(report: IndependenceReport) -> PairVerdict:
    return PairVerdict(
        independent=report.independent,
        k=report.k,
        k_query=report.k_query,
        k_update=report.k_update,
        analysis_seconds=report.analysis_seconds,
    )


# ---------------------------------------------------------------------------
# Bounded caches
# ---------------------------------------------------------------------------


class _BoundedCache(OrderedDict):
    """A dict with LRU eviction: ``get`` touches, insertion over the
    bound evicts the least-recently-used entry.

    Every per-expression cache on a long-lived engine uses this --
    a service exposed to arbitrary client expressions must not let any
    of its memo tables grow without limit (the same rationale as the
    pair-verdict memo's bound)."""

    def __init__(self, bound: int, stats: EngineStats):
        super().__init__()
        self._bound = bound
        self._stats = stats

    def get(self, key, default=None):
        if key in self:
            self.move_to_end(key)
            return self[key]
        return default

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        if len(self) > self._bound:
            self.popitem(last=False)
            self._stats.expr_evictions += 1


# ---------------------------------------------------------------------------
# Per-k inference state
# ---------------------------------------------------------------------------


class _KState:
    """The compiled analysis state for one depth cap: the leveled
    universe plus both memoizing inference tables.

    Distinct ``k`` values whose depth caps coincide (every ``k`` on a
    non-recursive schema) share one state, so their chain inferences and
    memo tables are pooled."""

    def __init__(self, universe: Universe):
        self.universe = universe
        self.depth_cap = universe.depth_cap
        self.queries = QueryInference(universe)
        self.updates = UpdateInference(self.queries)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class AnalysisEngine:
    """Reusable, cached analysis state for one schema.

    ``default_k`` (second positional argument, kept from the historical
    ``AnalysisEngine(schema, k)`` signature) merely pre-selects which
    per-k state :attr:`universe` / :attr:`queries` / :attr:`updates`
    expose; all analysis entry points derive or accept ``k`` per pair
    and lazily build the matching state.
    """

    #: Default bound on memoized pair verdicts: a long-lived per-schema
    #: engine (see :func:`engine_for`) must not grow without limit
    #: under a stream of distinct pairs; least-recently-used verdicts
    #: are evicted (counted in ``stats.pair_evictions``) and simply
    #: recomputed from the (much smaller, per-expression) chain caches
    #: on the next request.  Override per instance with the
    #: ``pair_cache_size`` constructor argument.
    PAIR_CACHE_SIZE = 65_536

    #: Default bound for each per-expression cache (parsed ASTs,
    #: multiplicities, digests, inferred chain sets).  Distinct
    #: expressions a service accepts over the wire are unbounded in
    #: number, so these memos need eviction just like the pair memo;
    #: evictions only cost recomputation on a later reappearance.
    EXPR_CACHE_SIZE = 65_536

    def __init__(self, schema: Schema, default_k: int | None = None,
                 pair_cache_size: int | None = None,
                 expr_cache_size: int | None = None):
        self.schema = schema
        self.default_k = default_k
        self.pair_cache_size = (
            pair_cache_size if pair_cache_size is not None
            else self.PAIR_CACHE_SIZE
        )
        if self.pair_cache_size < 1:
            raise ValueError("pair_cache_size must be >= 1")
        self.expr_cache_size = (
            expr_cache_size if expr_cache_size is not None
            else self.EXPR_CACHE_SIZE
        )
        if self.expr_cache_size < 1:
            raise ValueError("expr_cache_size must be >= 1")
        self.stats = EngineStats()
        self._store = None
        self._digest: str | None = None
        self._recursion: RecursionStructure | None = None
        self._states: dict[int, _KState] = {}
        self._states_by_cap: dict[int, _KState] = {}

        def bounded() -> _BoundedCache:
            return _BoundedCache(self.expr_cache_size, self.stats)

        self._parsed_queries: _BoundedCache = bounded()
        self._parsed_updates: _BoundedCache = bounded()
        self._query_k: _BoundedCache = bounded()
        self._update_k: _BoundedCache = bounded()
        self._expr_digests: _BoundedCache = bounded()
        self._query_chains: _BoundedCache = bounded()
        self._update_chains: _BoundedCache = bounded()
        self._pair_cache: OrderedDict[tuple, IndependenceReport] = (
            OrderedDict()
        )
        if default_k is not None:
            self.state(default_k)

    # -- identity ------------------------------------------------------------

    @property
    def digest(self) -> str:
        """Content hash of the schema (computed on first use)."""
        if self._digest is None:
            self._digest = schema_digest(self.schema)
        return self._digest

    def matches(self, schema: Schema) -> bool:
        """Is this engine's cache valid for ``schema``?"""
        return schema is self.schema or self.digest == schema_digest(schema)

    @property
    def k(self) -> int | None:
        """Historical alias for :attr:`default_k`."""
        return self.default_k

    # -- persistent verdict store ---------------------------------------------

    def attach_store(self, store) -> None:
        """Back the pair memo with a persistent verdict store.

        ``store`` is either a whole
        :class:`repro.storage.StorageBackend` (its ``verdicts`` facet
        is attached) or any verdict KV providing
        ``get(schema_digest, k, query_digest, update_digest) ->
        PairVerdict | None`` and ``put(schema_digest, k, query_digest,
        update_digest, verdict)`` (see
        :class:`repro.storage.base.VerdictKV`).  Once attached, a
        witness-free :meth:`analyze_pair` miss consults the store
        *before* chain inference -- a store hit therefore never builds
        the universe or the inference tables, which is what makes a
        restarted service warm-start from disk -- and every freshly
        computed verdict is written through.
        """
        verdicts = getattr(store, "verdicts", None)
        if verdicts is not None and not callable(
                getattr(store, "get", None)):
            store = verdicts
        self._store = store

    @property
    def store(self):
        """The attached persistent verdict store, if any."""
        return self._store

    def _expression_digest(self, key: object) -> str:
        """Stable digest of an interned expression cache key.

        Text expressions hash their whitespace-normalized source;
        AST-keyed expressions hash the structural ``repr`` (injective
        for the frozen dataclass node types, see :func:`schema_spec`).
        """
        digest = self._expr_digests.get(key)
        if digest is None:
            text = key if isinstance(key, str) else repr(key)
            digest = hashlib.sha256(text.encode()).hexdigest()
            self._expr_digests[key] = digest
        return digest

    # -- per-k state ---------------------------------------------------------

    def state(self, k: int) -> _KState:
        """The compiled ``(universe, inference tables)`` for ``k``.

        States are shared by depth cap: the universe (and hence every
        inference) depends on ``k`` only through the cap, which
        saturates immediately on non-recursive schemas.
        """
        state = self._states.get(k)
        if state is None:
            if self._recursion is None:
                self._recursion = recursion_structure(self.schema)
            cap = depth_cap_from(self._recursion, k)
            state = self._states_by_cap.get(cap)
            if state is None:
                build_started = time.perf_counter()
                state = _KState(Universe(self.schema, cap))
                ENGINE_UNIVERSE_SECONDS.observe(
                    time.perf_counter() - build_started
                )
                self._states_by_cap[cap] = state
                self.stats.universes_built += 1
            self._states[k] = state
        return state

    def _default_state(self) -> _KState:
        if self.default_k is None:
            raise ValueError(
                "engine has no default k; use state(k) or pass k explicitly"
            )
        return self.state(self.default_k)

    @property
    def universe(self):
        """The leveled chain universe of the ``default_k`` state."""
        return self._default_state().universe

    @property
    def queries(self) -> QueryInference:
        """The query inference table of the ``default_k`` state."""
        return self._default_state().queries

    @property
    def updates(self) -> UpdateInference:
        """The update inference table of the ``default_k`` state."""
        return self._default_state().updates

    # -- expression interning ------------------------------------------------

    def _query(self, query: Query | str) -> tuple[object, Query]:
        """Cache key + parsed AST for a query given as text or AST."""
        if isinstance(query, str):
            key = normalize_source(query)
            ast = self._parsed_queries.get(key)
            if ast is None:
                ast = parse_query(query)
                self._parsed_queries[key] = ast
            return key, ast
        return query, query

    def _update(self, update: Update | str) -> tuple[object, Update]:
        if isinstance(update, str):
            key = normalize_source(update)
            ast = self._parsed_updates.get(key)
            if ast is None:
                ast = parse_update(update)
                self._parsed_updates[key] = ast
            return key, ast
        return update, update

    def query_multiplicity(self, query: Query | str) -> int:
        """Cached ``k_q`` (Table 3)."""
        key, ast = self._query(query)
        k = self._query_k.get(key)
        if k is None:
            k = multiplicity(ast)
            self._query_k[key] = k
        return k

    def update_multiplicity(self, update: Update | str) -> int:
        """Cached ``k_u`` (Table 3)."""
        key, ast = self._update(update)
        k = self._update_k.get(key)
        if k is None:
            k = multiplicity(ast)
            self._update_k[key] = k
        return k

    # -- cached chain inference ----------------------------------------------

    def query_chains(self, query: Query | str, k: int) -> QueryChains:
        """Inferred ``(r; v; e)`` for the root judgment, cached per
        ``(query, depth cap)``."""
        key, ast = self._query(query)
        state = self.state(k)
        cache_key = (key, state.depth_cap)
        chains = self._query_chains.get(cache_key)
        if chains is None:
            self.stats.query_misses += 1
            infer_started = time.perf_counter()
            chains = state.queries.infer_root(ast, ROOT_VAR)
            ENGINE_INFERENCE_SECONDS.labels(kind="query").observe(
                time.perf_counter() - infer_started
            )
            self._query_chains[cache_key] = chains
        else:
            self.stats.query_hits += 1
        return chains

    def update_chains(self, update: Update | str, k: int) -> tuple:
        """Inferred update chain families, cached per ``(update, depth
        cap)``."""
        key, ast = self._update(update)
        state = self.state(k)
        cache_key = (key, state.depth_cap)
        chains = self._update_chains.get(cache_key)
        if chains is None:
            self.stats.update_misses += 1
            infer_started = time.perf_counter()
            chains = state.updates.infer_root(ast, ROOT_VAR)
            ENGINE_INFERENCE_SECONDS.labels(kind="update").observe(
                time.perf_counter() - infer_started
            )
            self._update_chains[cache_key] = chains
        else:
            self.stats.update_hits += 1
        return chains

    # -- analysis entry points -----------------------------------------------

    def analyze_pair(
        self,
        query: Query | str,
        update: Update | str,
        k: int | None = None,
        collect_witnesses: bool = True,
    ) -> IndependenceReport:
        """One verdict, served from or added to the engine's caches.

        Lookup order: in-memory pair memo, then (witness-free calls
        only) the attached persistent store, then a full chain-inference
        computation whose result is written through to both.  A
        store-served report carries the verdict and multiplicities but
        no chains or conflict witnesses.
        """
        query_key, _ = self._query(query)
        update_key, _ = self._update(update)
        cache_key = (query_key, update_key, k, collect_witnesses)
        cached = self._pair_cache.get(cache_key)
        if cached is not None:
            self.stats.pair_hits += 1
            self._pair_cache.move_to_end(cache_key)
            self._plan_pair("pair_memo", query_key, update_key)
            return cached
        self.stats.pair_misses += 1

        started = time.perf_counter()
        k_query = self.query_multiplicity(query)
        k_update = self.update_multiplicity(update)
        pair_k = k if k is not None else max(1, k_query + k_update)

        store_key = None
        if self._store is not None and not collect_witnesses:
            # Keyed by the *effective* k: an explicit ``k`` equal to the
            # derived multiplicity yields the same verdict, so the two
            # requests share one row.
            store_key = (self.digest, pair_k,
                         self._expression_digest(query_key),
                         self._expression_digest(update_key))
            lookup_started = time.perf_counter()
            stored = self._store.get(*store_key)
            ENGINE_STORE_SECONDS.labels(
                outcome="hit" if stored is not None else "miss"
            ).observe(time.perf_counter() - lookup_started)
            if stored is not None:
                self.stats.store_hits += 1
                # Parity with a computed witness-free report, which
                # carries exactly one witness-less Conflict when
                # dependent: consumers branching on ``report.conflicts``
                # must see the same truthiness regardless of store
                # warmth (the original conflict kind is not persisted).
                conflicts = () if stored.independent else (
                    Conflict("stored", ()),
                )
                report = IndependenceReport(
                    independent=stored.independent,
                    k=pair_k,
                    k_query=stored.k_query,
                    k_update=stored.k_update,
                    conflicts=conflicts,
                    analysis_seconds=time.perf_counter() - started,
                )
                self._memoize(cache_key, report)
                self._plan_pair("store", query_key, update_key)
                return report
            self.stats.store_misses += 1

        universes_before = self.stats.universes_built
        query_chains = self.query_chains(query, pair_k)
        update_chains = self.update_chains(update, pair_k)
        conflicts = check_conflicts(query_chains, update_chains,
                                    collect_witnesses)
        self._plan_pair(
            "computed", query_key, update_key,
            universe="built"
            if self.stats.universes_built > universes_before else "hit",
        )
        report = IndependenceReport(
            independent=not conflicts,
            k=pair_k,
            k_query=k_query,
            k_update=k_update,
            conflicts=tuple(conflicts),
            analysis_seconds=time.perf_counter() - started,
            query_chains=query_chains,
            update_chains=update_chains,
        )
        if store_key is not None:
            self._store.put(*store_key, _slim(report))
            self.stats.store_writes += 1
        self._memoize(cache_key, report)
        return report

    def _memoize(self, cache_key: tuple, report: IndependenceReport) -> None:
        self._pair_cache[cache_key] = report
        if len(self._pair_cache) > self.pair_cache_size:
            self._pair_cache.popitem(last=False)
            self.stats.pair_evictions += 1

    def _plan_pair(self, source: str, query_key, update_key,
                   **extra) -> None:
        """Record one per-pair verdict-source plan decision.

        The bounded ``repro_plan_decisions_total`` counter always
        ticks; the record itself (with clipped expression labels the
        batcher matches against its entries) is built only when a
        :class:`~repro.obs.plan.PlanContext` is installed, so the hot
        unexplained path pays one counter increment and nothing else.
        """
        plan = current_plan()
        if plan is None:
            plan_decision("engine", source)
            return
        plan_decision(
            "engine", source, plan,
            query=clip(query_key if isinstance(query_key, str)
                       else repr(query_key)),
            update=clip(update_key if isinstance(update_key, str)
                        else repr(update_key)),
            **extra,
        )

    def analyze_many(
        self,
        pairs,
        k: int | None = None,
        collect_witnesses: bool = False,
    ) -> list[IndependenceReport]:
        """Verdicts for an iterable of ``(query, update)`` pairs."""
        return [
            self.analyze_pair(query, update, k=k,
                              collect_witnesses=collect_witnesses)
            for query, update in pairs
        ]

    def analyze_matrix(
        self,
        queries,
        updates,
        k: int | None = None,
        processes: int | None = None,
        chunk_size: int | None = None,
    ) -> MatrixResult:
        """Verdict grid for every query x update combination.

        With ``processes`` > 1 the grid is fanned out over a process
        pool in chunked work units; each worker rebuilds the engine once
        from the schema's canonical spec and amortizes across its
        chunks.  Sequential mode shares this engine's caches and is the
        right choice whenever the grid is small or the engine is warm.
        """
        queries = list(queries)
        updates = list(updates)
        started = time.perf_counter()
        if processes is not None and processes > 1 and queries and updates:
            grid = self._matrix_parallel(queries, updates, k,
                                         processes, chunk_size)
            used = processes
        else:
            used = 1
            grid = [
                [
                    _slim(self.analyze_pair(query, update, k=k,
                                            collect_witnesses=False))
                    for update in updates
                ]
                for query in queries
            ]
        return MatrixResult(
            grid=tuple(tuple(row) for row in grid),
            wall_seconds=time.perf_counter() - started,
            processes=used,
        )

    def _matrix_parallel(self, queries, updates, k, processes,
                         chunk_size) -> list[list[PairVerdict]]:
        work = [
            (i, j, queries[i], updates[j], k)
            for i in range(len(queries))
            for j in range(len(updates))
        ]
        if chunk_size is None:
            # ~4 chunks per worker balances skew against dispatch cost.
            chunk_size = max(1, -(-len(work) // (processes * 4)))
        chunks = [
            work[offset:offset + chunk_size]
            for offset in range(0, len(work), chunk_size)
        ]
        grid: list[list[PairVerdict | None]] = [
            [None] * len(updates) for _ in queries
        ]
        with ProcessPoolExecutor(
            max_workers=min(processes, len(chunks)),
            initializer=_pool_init,
            initargs=(self.schema,),
        ) as pool:
            for chunk_result in pool.map(_pool_run_chunk, chunks):
                for i, j, verdict in chunk_result:
                    grid[i][j] = verdict
        return grid  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Process-pool workers
# ---------------------------------------------------------------------------

_WORKER_ENGINE: AnalysisEngine | None = None


def _pool_init(schema: Schema) -> None:
    """Build the worker-local engine once per pool worker (the schema
    arrives pickled via the pool's initargs)."""
    global _WORKER_ENGINE
    _WORKER_ENGINE = AnalysisEngine(schema)


def _pool_run_chunk(chunk) -> list[tuple[int, int, PairVerdict]]:
    """Analyze one chunk of ``(row, col, query, update, k)`` work units."""
    engine = _WORKER_ENGINE
    assert engine is not None, "worker used before initialization"
    return [
        (i, j, _slim(engine.analyze_pair(query, update, k=k,
                                         collect_witnesses=False)))
        for i, j, query, update, k in chunk
    ]


# ---------------------------------------------------------------------------
# Shared per-schema registry
# ---------------------------------------------------------------------------

_SHARED_ENGINES: dict[str, AnalysisEngine] = {}


def engine_for(schema: Schema) -> AnalysisEngine:
    """The process-wide shared engine for ``schema`` (keyed by digest).

    Two structurally equal schema instances map to the same engine; any
    change to the schema changes the digest and yields a fresh engine,
    so cached chains can never serve a stale schema version.
    """
    digest = schema_digest(schema)
    engine = _SHARED_ENGINES.get(digest)
    if engine is None:
        engine = AnalysisEngine(schema)
        _SHARED_ENGINES[digest] = engine
    return engine


def clear_shared_engines() -> None:
    """Drop the shared registry (tests and long-lived servers)."""
    _SHARED_ENGINES.clear()
