"""Multiplicity bounds for the finite analysis (Section 5, Table 3).

``k_exp = max_a F(a, exp) + R(exp)`` where ``F(a, exp)`` counts the
maximal frequency a tag can be *required* to appear in an inferred chain
by non-recursive steps and element construction, and ``R(exp)`` counts
consecutive recursive-axis navigations.  The independence analysis then
restricts to ``k``-chains with ``k = k_q + k_u`` (Theorem 5.1).
"""

from __future__ import annotations

from ..xquery.ast import (
    Axis,
    Concat,
    Element,
    Empty,
    For,
    If,
    Let,
    NameTest,
    NodeKindTest,
    Query,
    Step,
    StringLit,
    WildcardTest,
)
from ..xupdate.ast import (
    Delete,
    Insert,
    Rename,
    Replace,
    UConcat,
    UEmpty,
    UFor,
    UIf,
    ULet,
    Update,
)

Expr = Query | Update


def tag_frequency(tag: str, exp: Expr) -> int:
    """``F(a, exp)`` of Table 3."""
    if isinstance(exp, (Empty, StringLit, UEmpty)):
        return 0
    if isinstance(exp, Step):
        if exp.axis.is_recursive:
            return 0
        if exp.axis is Axis.SELF and isinstance(exp.test, NodeKindTest):
            # self::node() (the bare-variable desugaring) selects exactly
            # the context node: it adds no tag occurrence to any chain.
            return 0
        if isinstance(exp.test, NameTest) and exp.test.name == tag:
            return 1
        if isinstance(exp.test, (NodeKindTest, WildcardTest)):
            return 1
        return 0
    if isinstance(exp, (Concat, UConcat)):
        return max(tag_frequency(tag, exp.left), tag_frequency(tag, exp.right))
    if isinstance(exp, (If, UIf)):
        return max(
            tag_frequency(tag, exp.cond),
            tag_frequency(tag, exp.then),
            tag_frequency(tag, exp.orelse),
        )
    if isinstance(exp, (For, Let, UFor, ULet)):
        return tag_frequency(tag, exp.source) + tag_frequency(tag, exp.body)
    if isinstance(exp, Element):
        inner = tag_frequency(tag, exp.content)
        return inner + 1 if exp.tag == tag else inner
    if isinstance(exp, Delete):
        return tag_frequency(tag, exp.target)
    if isinstance(exp, Rename):
        inner = tag_frequency(tag, exp.target)
        return inner + 1 if exp.tag == tag else inner
    if isinstance(exp, Insert):
        return tag_frequency(tag, exp.source) + tag_frequency(tag, exp.target)
    if isinstance(exp, Replace):
        return tag_frequency(tag, exp.target) + tag_frequency(tag, exp.source)
    raise TypeError(f"unknown expression node {exp!r}")


def recursive_steps(exp: Expr) -> int:
    """``R(exp)`` of Table 3."""
    if isinstance(exp, (Empty, StringLit, UEmpty)):
        return 0
    if isinstance(exp, Step):
        return 1 if exp.axis.is_recursive else 0
    if isinstance(exp, (Concat, UConcat)):
        return max(recursive_steps(exp.left), recursive_steps(exp.right))
    if isinstance(exp, (If, UIf)):
        return max(
            recursive_steps(exp.cond),
            recursive_steps(exp.then),
            recursive_steps(exp.orelse),
        )
    if isinstance(exp, (For, Let, UFor, ULet)):
        return recursive_steps(exp.source) + recursive_steps(exp.body)
    if isinstance(exp, Element):
        return recursive_steps(exp.content)
    if isinstance(exp, Delete):
        return recursive_steps(exp.target)
    if isinstance(exp, Rename):
        return recursive_steps(exp.target)
    if isinstance(exp, Insert):
        return recursive_steps(exp.source) + recursive_steps(exp.target)
    if isinstance(exp, Replace):
        return recursive_steps(exp.target) + recursive_steps(exp.source)
    raise TypeError(f"unknown expression node {exp!r}")


def _mentioned_tags(exp: Expr) -> set[str]:
    """Tags whose frequency can be non-zero (name tests, wildcard steps,
    constructed/renamed tags)."""
    tags: set[str] = set()

    def walk(node: Expr) -> None:
        if isinstance(node, Step):
            if isinstance(node.test, NameTest):
                tags.add(node.test.name)
            elif isinstance(node.test, (NodeKindTest, WildcardTest)):
                tags.add("*any*")
            return
        if isinstance(node, (Empty, StringLit, UEmpty)):
            return
        if isinstance(node, (Concat, UConcat)):
            walk(node.left)
            walk(node.right)
            return
        if isinstance(node, (If, UIf)):
            walk(node.cond)
            walk(node.then)
            walk(node.orelse)
            return
        if isinstance(node, (For, Let, UFor, ULet)):
            walk(node.source)
            walk(node.body)
            return
        if isinstance(node, Element):
            tags.add(node.tag)
            walk(node.content)
            return
        if isinstance(node, Delete):
            walk(node.target)
            return
        if isinstance(node, Rename):
            tags.add(node.tag)
            walk(node.target)
            return
        if isinstance(node, Insert):
            walk(node.source)
            walk(node.target)
            return
        if isinstance(node, Replace):
            walk(node.target)
            walk(node.source)
            return
        raise TypeError(f"unknown expression node {node!r}")

    walk(exp)
    return tags


def multiplicity(exp: Expr) -> int:
    """``k_exp = max_a F(a, exp) + R(exp)``.

    The maximum over tags only needs to range over tags syntactically
    mentioned by ``exp`` (all other tags have frequency 0); ``node()`` and
    ``*`` steps count toward every tag and are handled by a pseudo-tag
    that never collides with constructed-tag increments.
    """
    tags = _mentioned_tags(exp)
    max_freq = max(
        (tag_frequency(tag, exp) for tag in tags), default=0
    )
    return max_freq + recursive_steps(exp)


def pair_multiplicity(query: Query, update: Update) -> int:
    """``k = k_q + k_u`` (Theorem 5.1), at least 1."""
    return max(1, multiplicity(query) + multiplicity(update))
