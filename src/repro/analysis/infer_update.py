"""Chain inference for updates: the rules of Table 2 over CDAG components.

An update chain ``c : c'`` is represented by a *full-chain* component
denoting the concatenations ``c.c'``: the target prefix (return chains of
the target query ``q0``) with the suffix grafted below each prefix
endpoint.  Suffixes come from the source expression's element chains
(constructed data) or from the schema closure below the source's return
symbols -- exactly the two unions of (INSERT-1)/(INSERT-2)/(REPLACE).

Conflict checking (Definition 4.1) only needs plain prefix tests between
full chains, so no separate ``:`` marker is stored; every construction
below guarantees a non-empty suffix (``c' != eps``), as Theorem 3.4
requires.

Deviation note: the element-chain part of (REPLACE) is anchored below the
target's *parent* (replacement puts new content in place of the target),
fixing the apparent typo in the paper's rule -- see DESIGN.md.
"""

from __future__ import annotations

from ..xupdate.ast import (
    Delete,
    Insert,
    Rename,
    Replace,
    UConcat,
    UEmpty,
    UFor,
    UIf,
    ULet,
    Update,
    update_free_variables,
)
from .cdag import (
    Component,
    Node,
    make_component,
    parent_step,
    shift_component,
    singleton_component,
)
from .infer_query import (
    Components,
    Gamma,
    InferenceError,
    QueryInference,
    gamma_bind,
)


from dataclasses import dataclass


@dataclass(frozen=True)
class UpdateComponent:
    """One update chain family ``c : c'`` as a full-chain component.

    ``full`` denotes the concatenations ``c.c'``; ``split_ends`` are the
    CDAG nodes where the target prefix ``c`` ends and the suffix ``c'``
    begins, and ``suffix_edges`` are exactly the full-component edges
    lying on suffix paths (the graft edges plus the grafted suffix
    component's own edges; for delete/rename, the edges into the final
    symbol).  Conflict checking needs both: an update *involves* every
    intermediate position ``c.c''`` with ``c'' <= c'`` (the
    inserted/removed subtree's root and inner nodes), so a used chain
    strictly between ``c`` and ``c.c'`` conflicts even though neither
    full chain is a prefix of it.  Restricting the post-split walk to
    ``suffix_edges`` keeps the test exact on recursive schemas, where a
    split node also has non-suffix out-edges leading to *deeper*
    occurrences of the target -- see ``used_chain_conflict`` in
    :mod:`repro.analysis.independence`.
    """

    full: Component
    split_ends: frozenset
    suffix_edges: frozenset = frozenset()

    def is_empty(self) -> bool:
        return self.full.is_empty()

    def enumerate_chains(self, limit: int = 10_000):
        """Chains of the full component (tests/debugging)."""
        return self.full.enumerate_chains(limit)

    @property
    def ends(self):
        return self.full.ends


def _with_parent_splits(component: Component) -> UpdateComponent:
    """Wrap a delete/rename-style component: the suffix is the final
    symbol, so splits sit at the parents of the ends (the component root
    itself when a chain consists of the root only) and the suffix edges
    are the in-edges of the ends."""
    final_edges = frozenset(
        (source, target) for (source, target) in component.edges
        if target in component.ends
    )
    return UpdateComponent(
        component,
        frozenset(source for (source, _) in final_edges),
        final_edges,
    )


class UpdateInference:
    """Chain inference engine for updates, sharing a query engine.

    Like :class:`QueryInference`, results are memoized structurally on
    ``(update AST, Gamma)`` restricted to the update's free variables, so
    one update analyzed against many views re-derives nothing.
    """

    def __init__(self, query_inference: QueryInference):
        self.queries = query_inference
        self.universe = query_inference.universe
        self._memo: dict[tuple[Update, Gamma],
                         tuple[UpdateComponent, ...]] = {}

    # -- entry points --------------------------------------------------------

    def infer_root(self, update: Update, root_var: str
                   ) -> tuple[UpdateComponent, ...]:
        root = singleton_component(self.universe.root())
        gamma: Gamma = ((root_var, (root,)),)
        return self.infer(update, gamma)

    def infer(self, update: Update, gamma: Gamma
              ) -> tuple[UpdateComponent, ...]:
        free = update_free_variables(update)
        key = (update, tuple((v, c) for (v, c) in gamma if v in free))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._infer(update, gamma)
        self._memo[key] = result
        return result

    # -- the rules -------------------------------------------------------

    def _infer(self, update: Update, gamma: Gamma
               ) -> tuple[UpdateComponent, ...]:
        if isinstance(update, UEmpty):
            return ()
        if isinstance(update, UConcat):
            return self.infer(update.left, gamma) + self.infer(
                update.right, gamma
            )
        if isinstance(update, UFor):
            source = self.queries.infer(update.source, gamma)
            inner = gamma_bind(gamma, update.var, source.returns)
            return self.infer(update.body, inner)
        if isinstance(update, ULet):
            source = self.queries.infer(update.source, gamma)
            inner = gamma_bind(gamma, update.var, source.returns)
            return self.infer(update.body, inner)
        if isinstance(update, UIf):
            return self.infer(update.then, gamma) + self.infer(
                update.orelse, gamma
            )
        if isinstance(update, Delete):                        # (DELETE)
            # { c:alpha | c.alpha in r0 }: the full chain c.alpha is the
            # target return chain itself; the split sits at the parent.
            target = self.queries.infer(update.target, gamma)
            return tuple(
                _with_parent_splits(c)
                for c in target.returns if not c.is_empty()
            )
        if isinstance(update, Rename):                        # (RENAME)
            target = self.queries.infer(update.target, gamma)
            result: list[UpdateComponent] = []
            for component in target.returns:
                if component.is_empty():
                    continue
                result.append(_with_parent_splits(component))  # c:alpha
                renamed = _replace_end_symbols(component, update.tag)
                if not renamed.is_empty():                     # c:b
                    result.append(_with_parent_splits(renamed))
            return tuple(result)
        if isinstance(update, Insert):                        # (INSERT-1/2)
            source = self.queries.infer(update.source, gamma)
            target = self.queries.infer(update.target, gamma)
            if update.pos.is_into:
                prefixes = tuple(
                    c for c in target.returns if not c.is_empty()
                )
            else:
                prefixes = tuple(
                    p for p in (parent_step(c) for c in target.returns)
                    if not p.is_empty()
                )
            return self._graft_sources(prefixes, source.returns,
                                       source.elements)
        if isinstance(update, Replace):                       # (REPLACE)
            source = self.queries.infer(update.source, gamma)
            target = self.queries.infer(update.target, gamma)
            result = list(
                _with_parent_splits(c)
                for c in target.returns if not c.is_empty()
            )                                                 # c:alpha
            prefixes = tuple(
                p for p in (parent_step(c) for c in target.returns)
                if not p.is_empty()
            )
            result.extend(
                self._graft_sources(prefixes, source.returns,
                                    source.elements)
            )
            return tuple(result)
        raise InferenceError(f"unknown update node {update!r}")

    # -- suffix grafting -------------------------------------------------

    def _graft_sources(self, prefixes: Components,
                       source_returns: Components,
                       source_elements: Components
                       ) -> tuple[UpdateComponent, ...]:
        """Build full-chain components for all (prefix, suffix) pairs.

        * element suffixes ``c' in e`` are grafted as-is;
        * input-data suffixes ``alpha.c''`` (source return symbol plus any
          schema continuation) are built from the descendant-or-self
          closure below each return end symbol.
        """
        result: list[UpdateComponent] = []
        suffixes: list[Component] = [
            c for c in source_elements if not c.is_empty()
        ]
        symbols = {
            end[1]
            for component in source_returns
            if not component.is_empty()
            for end in component.ends
        }
        for symbol in sorted(symbols):
            suffixes.append(self._closure_suffix(symbol))
        for prefix in prefixes:
            for suffix in suffixes:
                grafted, suffix_edges = _graft_all_ends(prefix, suffix)
                if not grafted.is_empty():
                    result.append(
                        UpdateComponent(grafted, prefix.ends, suffix_edges)
                    )
        return tuple(result)

    def _closure_suffix(self, symbol: str) -> Component:
        """Suffix chains ``symbol.c''`` for any schema continuation c''."""
        root: Node = (0, symbol)
        edges: set[tuple[Node, Node]] = set()
        ends: set[Node] = {root}
        frontier = [root]
        seen = {root}
        while frontier:
            node = frontier.pop()
            for succ in self.universe.successors(node):
                edges.add((node, succ))
                ends.add(succ)
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return make_component(root, edges, ends)


def _graft_all_ends(prefix: Component, suffix: Component
                    ) -> tuple[Component, frozenset]:
    """One full-chain component covering every prefix endpoint.

    Each endpoint receives its own depth-shifted copy of the suffix; copies
    at different depths cannot cross (the only bridges are the per-endpoint
    graft edges), so the denoted set stays exact up to the usual
    same-(depth,symbol) merging.  Also returns the suffix edges (graft
    edges plus shifted suffix edges) for the split-aware conflict test.
    """
    if prefix.is_empty() or suffix.is_empty():
        return Component(prefix.root, frozenset(), frozenset()), frozenset()
    edges: set[tuple[Node, Node]] = set(prefix.edges)
    suffix_edges: set[tuple[Node, Node]] = set()
    ends: set[Node] = set()
    for end in prefix.ends:
        shifted = shift_component(suffix, end[0] + 1)
        suffix_edges.add((end, shifted.root))
        suffix_edges.update(shifted.edges)
        ends.update(shifted.ends)
    edges |= suffix_edges
    component = make_component(prefix.root, edges, ends,
                               prefix.constructed or suffix.constructed)
    return component, frozenset(suffix_edges) & component.edges


def _replace_end_symbols(component: Component, tag: str) -> Component:
    """Chains ``c.b`` for ``c.alpha`` in the component ((RENAME)'s new tag).

    Root-only chains (renaming the document root) keep a root node with
    the new tag, represented as a fresh root component.
    """
    edges: set[tuple[Node, Node]] = set(component.edges)
    reverse: dict[Node, list[Node]] = {}
    for source, target in component.edges:
        reverse.setdefault(target, []).append(source)
    ends: set[Node] = set()
    root = component.root
    new_root = root
    for end in component.ends:
        node: Node = (end[0], tag)
        if end == root:
            new_root = node
            ends.add(node)
            continue
        for parent in reverse.get(end, ()):
            edges.add((parent, node))
            ends.add(node)
    if new_root != root and len(ends) == 1:
        # Only the root was renamed: a one-node component with the new tag.
        return singleton_component(new_root, component.constructed)
    return make_component(root, edges, {e for e in ends if e[1] == tag},
                          component.constructed)