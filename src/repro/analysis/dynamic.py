"""Dynamic (semantic) independence testing -- the ground truth oracle.

Definition 2.4: ``q`` and ``u`` are independent w.r.t. ``(sigma, gamma)``
iff evaluating ``q`` before and after applying ``u`` yields value-
equivalent results.  Testing over a corpus of generated documents gives:

* a *dependence witness* (some document where results differ) -- definitive:
  the pair is semantically dependent w.r.t. the schema;
* no witness across the corpus -- the pair is *labeled* independent, the
  same judgment the paper's authors made by hand for their benchmark
  ("for most pairs in the considered testbed independence is evident").

This oracle validates soundness (a static verdict of independent must
never coincide with a dynamic witness) and provides the ground truth for
the precision experiment (Figure 3.b).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..schema.dtd import DTD
from ..xmldm.generator import generate_corpus
from ..xmldm.store import Tree, sequences_equivalent
from ..xquery.ast import ROOT_VAR, Query
from ..xquery.evaluator import evaluate_query
from ..xquery.parser import parse_query
from ..xupdate.ast import Update
from ..xupdate.evaluator import apply_update
from ..xupdate.parser import parse_update
from ..xupdate.pul import UpdateError


@dataclass(frozen=True)
class DynamicVerdict:
    """Outcome of dynamic testing for one pair over a corpus."""

    independent: bool
    documents_tested: int
    witness_index: int | None = None   # corpus index of the first witness

    def __bool__(self) -> bool:
        return self.independent


def differs_on(query: Query, update: Update, tree: Tree) -> bool:
    """True iff the update observably changes the query result on ``tree``.

    The original store is left untouched (everything runs on clones).
    Updates whose evaluation raises a dynamic error (e.g. a multi-node
    rename target) are treated as no-ops on that document, mirroring the
    W3C semantics where a failed update changes nothing.
    """
    before_tree = tree.clone()
    before_env = {ROOT_VAR: [before_tree.root]}
    before = evaluate_query(query, before_tree.store, before_env)

    updated = tree.clone()
    try:
        apply_update(update, updated.store, {ROOT_VAR: [updated.root]})
    except UpdateError:
        return False
    after_env = {ROOT_VAR: [updated.root]}
    after = evaluate_query(query, updated.store, after_env)

    return not sequences_equivalent(
        before_tree.store, before, updated.store, after
    )


def dynamic_independent(
    query: Query | str,
    update: Update | str,
    documents: list[Tree],
) -> DynamicVerdict:
    """Test a pair over a document corpus.

    >>> from repro.schema import paper_doc_dtd
    >>> from repro.xmldm import generate_corpus
    >>> docs = generate_corpus(paper_doc_dtd(), count=4, target_bytes=400)
    >>> dynamic_independent("//a//c", "delete //b//c", docs).independent
    True
    """
    if isinstance(query, str):
        query = parse_query(query)
    if isinstance(update, str):
        update = parse_update(update)
    for index, tree in enumerate(documents):
        if differs_on(query, update, tree):
            return DynamicVerdict(False, index + 1, witness_index=index)
    return DynamicVerdict(True, len(documents))


def dynamic_independent_generated(
    query: Query | str,
    update: Update | str,
    dtd: DTD,
    documents: int = 8,
    target_bytes: int = 4_000,
    seed: int = 0,
) -> DynamicVerdict:
    """Convenience wrapper generating the corpus from the DTD."""
    corpus = generate_corpus(dtd, documents, target_bytes=target_bytes,
                             seed=seed)
    return dynamic_independent(query, update, corpus)
