"""The paper's contribution: chain-based query-update independence analysis."""

from .baseline import (
    BaselineReport,
    TypeAnalysis,
    baseline_analyze,
    baseline_is_independent,
)
from .cdag import (
    ChainExplosion,
    Component,
    Node,
    Universe,
    components_conflict,
    conflict_witness,
    make_component,
    singleton_component,
)
from .engine import (
    AnalysisEngine,
    CacheStats,
    MatrixResult,
    PairVerdict,
    clear_shared_engines,
    engine_for,
    normalize_source,
    schema_digest,
)
from .explain import explain, explain_multiplicity
from .project import project_for_query, projection_locations
from .dynamic import (
    DynamicVerdict,
    differs_on,
    dynamic_independent,
    dynamic_independent_generated,
)
from .independence import (
    Conflict,
    IndependenceReport,
    analyze,
    build_universe,
    chains_of,
    check_conflicts,
    depth_cap_for,
    is_independent,
)
from .infer_query import (
    Components,
    Gamma,
    InferenceError,
    QueryChains,
    QueryInference,
    gamma_bind,
    gamma_get,
)
from .infer_update import UpdateInference
from .kbound import (
    multiplicity,
    pair_multiplicity,
    recursive_steps,
    tag_frequency,
)

__all__ = [
    "BaselineReport",
    "TypeAnalysis",
    "baseline_analyze",
    "baseline_is_independent",
    "ChainExplosion",
    "Component",
    "Node",
    "Universe",
    "components_conflict",
    "conflict_witness",
    "make_component",
    "singleton_component",
    "explain",
    "explain_multiplicity",
    "project_for_query",
    "projection_locations",
    "DynamicVerdict",
    "differs_on",
    "dynamic_independent",
    "dynamic_independent_generated",
    "AnalysisEngine",
    "CacheStats",
    "MatrixResult",
    "PairVerdict",
    "clear_shared_engines",
    "engine_for",
    "normalize_source",
    "schema_digest",
    "Conflict",
    "IndependenceReport",
    "analyze",
    "build_universe",
    "chains_of",
    "check_conflicts",
    "depth_cap_for",
    "is_independent",
    "Components",
    "Gamma",
    "InferenceError",
    "QueryChains",
    "QueryInference",
    "gamma_bind",
    "gamma_get",
    "UpdateInference",
    "multiplicity",
    "pair_multiplicity",
    "recursive_steps",
    "tag_frequency",
]
