"""Chain-driven document projection (the operational face of Theorem 3.2).

Theorem 3.2 states that projecting any valid document onto the locations
typed by a query's used and return chains (return chains keeping their
whole subtrees) preserves the query's answer.  This module turns that
statement into an operation: :func:`project_for_query` shrinks a document
to the part a query can possibly see -- the type-based projection
application pioneered by Marian & Simeon [16] and Benzaken et al. [7],
here with chain precision.

Used by the test suite as a direct empirical check of Theorem 3.2, and
useful on its own to cut memory for repeated evaluation of a fixed query.
"""

from __future__ import annotations

from ..schema.dtd import DTD
from ..xmldm.projection import ChainKeep, keep_set_for_chains, project
from ..xmldm.store import Location, Tree
from ..xquery.ast import ROOT_VAR, Query
from ..xquery.parser import parse_query
from .cdag import ChainExplosion, Component
from .independence import AnalysisEngine, build_universe
from .infer_query import QueryChains, QueryInference
from .kbound import multiplicity


def _component_chain_index(
    components: tuple[Component, ...], limit: int
) -> tuple[set[tuple[str, ...]], bool]:
    """All chains of the components; flag True when enumeration blew up
    (callers must then keep everything -- sound fallback)."""
    chains: set[tuple[str, ...]] = set()
    for component in components:
        if component.constructed:
            continue
        try:
            chains |= component.enumerate_chains(limit)
        except ChainExplosion:
            return set(), True
    return chains, False


def schema_reach(
    schema: DTD, cap: int
) -> tuple[tuple[str, int], ...]:
    """Per-symbol downward reach, saturated at ``cap``.

    ``reach[s]`` is the length of the longest valid path strictly below
    ``s`` (0 for leaves); a symbol that reaches a type-graph cycle gets
    ``cap``, since its true reach is unbounded.  This is the viability
    side of the truncation guard on :class:`ChainKeep`: whether a label
    chain can still extend to the universe's depth cap depends only on
    its length and last symbol, so a one-pass DFS over the type graph
    answers it for every chain at once.
    """
    memo: dict[str, int] = {}
    on_path: set[str] = set()

    def extend(symbol: str) -> int:
        if symbol in memo:
            return memo[symbol]
        if symbol in on_path:
            return cap  # back edge: symbol lies on a cycle
        on_path.add(symbol)
        best = 0
        for child in sorted(schema.children_of(symbol)):
            best = max(best, 1 + extend(child))
            if best >= cap:
                best = cap
                break
        on_path.discard(symbol)
        memo[symbol] = best
        return best

    return tuple(sorted(
        (symbol, extend(symbol)) for symbol in schema.symbols
    ))


def chain_keep_for_chains(
    chains: QueryChains, limit: int = 200_000,
    depth_cap: int | None = None,
    schema: DTD | None = None,
) -> ChainKeep | None:
    """The :class:`ChainKeep` spec of an inferred ``(r; v; e)`` triple.

    Return-chain hits keep their whole subtrees (a return node embodies
    its descendants -- Section 3); used-chain hits keep just themselves
    (ancestors come from the projection's upward closure).  Returns
    None when the chain sets are too large to enumerate -- callers must
    then keep everything (sound fallback).

    ``depth_cap`` is the universe's maximum chain length, recorded on
    the spec as its truncation depth: on a recursive schema a valid
    document may nest past the cap, where the capped universe saw
    nothing -- no inferred chain, no productivity verdict -- so any
    still-viable path reaching that depth must keep its whole subtree.
    Without this the projection silently drops the deepest nodes
    (found by the docstore bench: a ~100k-node XMark document nests
    ``parlist``/``listitem`` recursion past the cap, and the projected
    ``//text()`` answer lost exactly the depth-13 text nodes).

    Viability toward the cap comes from ``schema`` (the
    :func:`schema_reach` table), not from the inferred chains: a
    recursion-deepened path whose completions *all* lie past the cap
    matches no inferred chain at any depth, yet a valid document can
    park answer nodes down there -- pruning it would be unsound.  The
    inferred-prefix index alone cannot see this (found by the
    Theorem 3.2 property test: a two-level ``t3`` recursion pushed the
    only ``//text()`` witness to depth 6 under a cap of 5, and the
    projection dropped it at depth 3).
    """
    return_chains, blown = _component_chain_index(chains.returns, limit)
    if blown:
        return None
    used_chains, blown = _component_chain_index(chains.used, limit)
    if blown:
        return None
    reach = schema_reach(schema, depth_cap) \
        if schema is not None and depth_cap is not None else ()
    return ChainKeep.from_chains(return_chains, used_chains,
                                 truncation=depth_cap, reach=reach)


def chain_keep_for_query(
    query: Query | str,
    schema: DTD | None = None,
    k: int | None = None,
    engine=None,
    limit: int = 200_000,
) -> ChainKeep | None:
    """Infer a query's chains and turn them into a :class:`ChainKeep`.

    This is the entry point of the *projection pushdown* path: the
    returned spec drives :func:`repro.docstore.streamload.load_xml` so
    a document is projected onto ``t|L`` while parsing (Theorem 3.2
    licenses evaluating on the projection).  With ``engine`` (a
    :class:`repro.analysis.engine.AnalysisEngine`) the inference is
    served from the engine's chain caches; otherwise ``schema`` is
    required and a throwaway universe is built.  Returns None when the
    chain sets are too large to enumerate (callers load unprojected).
    """
    if engine is not None:
        if k is None:
            k = max(1, engine.query_multiplicity(query))
        chains = engine.query_chains(query, k)
        depth_cap = engine.state(k).depth_cap
        schema = engine.schema
    else:
        if schema is None:
            raise ValueError("chain_keep_for_query needs schema or engine")
        if isinstance(query, str):
            query = parse_query(query)
        if k is None:
            k = max(1, multiplicity(query))
        universe = build_universe(schema, k)
        chains = QueryInference(universe).infer_root(query, ROOT_VAR)
        depth_cap = universe.depth_cap
    return chain_keep_for_chains(chains, limit, depth_cap=depth_cap,
                                 schema=schema)


def chain_keep_for_queries(
    queries,
    schema: DTD | None = None,
    engine=None,
    limit: int = 200_000,
) -> ChainKeep | None:
    """The union :class:`ChainKeep` of several queries' chains.

    The one implementation behind every "project for these queries"
    entry point (``doc.load project_for``, ``repro load --project``).
    Returns None when ``queries`` is empty or any query's chain sets
    are too large to enumerate -- the sound fallback is loading
    everything.  Parse errors propagate to the caller.
    """
    keep: ChainKeep | None = None
    for query in queries:
        one = chain_keep_for_query(query, schema=schema, engine=engine,
                                   limit=limit)
        if one is None:
            return None
        keep = one if keep is None else keep.union(one)
    return keep


def projection_locations(
    tree: Tree, chains: QueryChains, limit: int = 200_000,
    depth_cap: int | None = None,
    schema: DTD | None = None,
) -> set[Location] | None:
    """Locations of ``tree`` covered by the query's chains.

    A thin composition of :func:`chain_keep_for_chains` and
    :func:`repro.xmldm.projection.keep_set_for_chains` -- the same two
    halves the streaming projected loader uses, so the materialized and
    streaming paths cannot diverge.  Returns None when the chain sets
    are too large to enumerate -- the caller should skip projecting.
    """
    keep = chain_keep_for_chains(chains, limit, depth_cap=depth_cap,
                                 schema=schema)
    if keep is None:
        return None
    return keep_set_for_chains(tree, keep)


def project_for_query(
    query: Query | str,
    tree: Tree,
    schema: DTD,
    k: int | None = None,
    engine: AnalysisEngine | None = None,
) -> Tree:
    """Project ``tree`` onto what ``query`` can see (Theorem 3.2).

    The result is a fresh tree on which evaluating ``query`` yields a
    value-equivalent answer.  If the chain sets are too large to
    enumerate, the original tree is returned unchanged (sound no-op).

    >>> from repro.schema import bib_dtd
    >>> from repro.xmldm import parse_xml
    >>> tree = parse_xml("<bib><book><title>t</title><author>"
    ...                  "<last>l</last><first>f</first></author>"
    ...                  "<publisher>p</publisher><price>9</price>"
    ...                  "</book></bib>")
    >>> small = project_for_query("//title", tree, bib_dtd())
    >>> small.size() < tree.size()
    True
    """
    if isinstance(query, str):
        query = parse_query(query)
    if k is None:
        k = max(1, multiplicity(query))
    if engine is not None and engine.k == k and engine.schema is schema:
        inference = engine.queries
    else:
        inference = QueryInference(build_universe(schema, k))
    chains = inference.infer_root(query, ROOT_VAR)
    keep = projection_locations(
        tree, chains, depth_cap=inference.universe.depth_cap,
        schema=schema,
    )
    if keep is None:
        return tree
    return project(tree, keep)
