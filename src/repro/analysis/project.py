"""Chain-driven document projection (the operational face of Theorem 3.2).

Theorem 3.2 states that projecting any valid document onto the locations
typed by a query's used and return chains (return chains keeping their
whole subtrees) preserves the query's answer.  This module turns that
statement into an operation: :func:`project_for_query` shrinks a document
to the part a query can possibly see -- the type-based projection
application pioneered by Marian & Simeon [16] and Benzaken et al. [7],
here with chain precision.

Used by the test suite as a direct empirical check of Theorem 3.2, and
useful on its own to cut memory for repeated evaluation of a fixed query.
"""

from __future__ import annotations

from ..schema.dtd import DTD
from ..xmldm.projection import project
from ..xmldm.store import Location, Tree
from ..xquery.ast import ROOT_VAR, Query
from ..xquery.parser import parse_query
from .cdag import ChainExplosion, Component
from .independence import AnalysisEngine, build_universe
from .infer_query import QueryChains, QueryInference
from .kbound import multiplicity


def _component_chain_index(
    components: tuple[Component, ...], limit: int
) -> tuple[set[tuple[str, ...]], bool]:
    """All chains of the components; flag True when enumeration blew up
    (callers must then keep everything -- sound fallback)."""
    chains: set[tuple[str, ...]] = set()
    for component in components:
        if component.constructed:
            continue
        try:
            chains |= component.enumerate_chains(limit)
        except ChainExplosion:
            return set(), True
    return chains, False


def projection_locations(
    tree: Tree, chains: QueryChains, limit: int = 200_000
) -> set[Location] | None:
    """Locations of ``tree`` covered by the query's chains.

    Return-chain locations keep their whole subtrees (a return node
    embodies its descendants -- Section 3); used-chain locations keep
    just themselves (ancestors are added by the projection's upward
    closure).  Returns None when the chain sets are too large to
    enumerate -- the caller should skip projecting.
    """
    return_chains, blown = _component_chain_index(chains.returns, limit)
    if blown:
        return None
    used_chains, blown = _component_chain_index(chains.used, limit)
    if blown:
        return None

    keep: set[Location] = set()
    store = tree.store
    for loc in store.descendants_or_self(tree.root):
        node_chain = store.node_chain(loc)
        if node_chain in used_chains:
            keep.add(loc)
        if node_chain in return_chains:
            keep.add(loc)
            keep.update(store.descendants(loc))
    return keep


def project_for_query(
    query: Query | str,
    tree: Tree,
    schema: DTD,
    k: int | None = None,
    engine: AnalysisEngine | None = None,
) -> Tree:
    """Project ``tree`` onto what ``query`` can see (Theorem 3.2).

    The result is a fresh tree on which evaluating ``query`` yields a
    value-equivalent answer.  If the chain sets are too large to
    enumerate, the original tree is returned unchanged (sound no-op).

    >>> from repro.schema import bib_dtd
    >>> from repro.xmldm import parse_xml
    >>> tree = parse_xml("<bib><book><title>t</title><author>"
    ...                  "<last>l</last><first>f</first></author>"
    ...                  "<publisher>p</publisher><price>9</price>"
    ...                  "</book></bib>")
    >>> small = project_for_query("//title", tree, bib_dtd())
    >>> small.size() < tree.size()
    True
    """
    if isinstance(query, str):
        query = parse_query(query)
    if k is None:
        k = max(1, multiplicity(query))
    if engine is not None and engine.k == k and engine.schema is schema:
        inference = engine.queries
    else:
        inference = QueryInference(build_universe(schema, k))
    chains = inference.infer_root(query, ROOT_VAR)
    keep = projection_locations(tree, chains)
    if keep is None:
        return tree
    return project(tree, keep)
