"""Request-scoped query plans: EXPLAIN for the whole serving pipeline.

Where :mod:`repro.obs.tracing` answers *how long* each layer of a
request took, this module answers *why* the request ran the way it did.
Every layer on the serving path attaches structured *decision* records
to a request-scoped :class:`PlanContext` (a :class:`contextvars.ContextVar`,
same pattern as :class:`~repro.obs.tracing.TraceContext`):

- ``router`` — which shard was chosen and why the schema reference
  resolved (``digest`` / ``alias`` / ``builtin``).
- ``batcher`` — how the analyze call was executed: coalesced into a
  ``matrix`` or ``sparse`` flush (with flush id and dedup factor),
  ``direct`` when batching is disabled, ``oneshot`` when the client
  opted out, or ``fallback`` when a failed flush degraded to
  per-request analysis.
- ``engine`` — where each pair verdict came from (``pair_memo`` /
  ``store`` / ``computed``) and, for computed verdicts, whether the
  type universe was a cache ``hit`` or freshly ``built``.
- ``docstore`` — what the loader did (``projected`` / ``unprojected`` /
  ``from_store`` / ``generated``) with keep/seen/skipped counts and the
  projection's depth cap.
- ``pushdown`` — the compiled :class:`~repro.storage.base.StepSpec`
  chain and the exact parameterized SQL, or the *ineligibility reason*
  (see :data:`INELIGIBILITY_REASONS`) when compilation refused.
- ``answer`` — which answer path ``doc.query`` took (``pushdown`` /
  ``materialized`` / ``fallback``).

The decision vocabulary is **closed** (:data:`PLAN_DECISIONS`): every
record also increments the bounded
``repro_plan_decisions_total{layer,decision}`` counter, and unknown
layers/decisions are clamped to ``other`` so plan-shape metrics can
never explode label cardinality.  The vocabulary table in
``docs/OBSERVABILITY.md`` is diffed against these constants by the doc
tests.

Plans surface three ways: the opt-in ``explain: true`` wire envelope
flag (the shard router folds worker plans under its own, mirroring
trace forwarding), the ``repro explain`` CLI (renders a plan as an
indented tree via :func:`render_plan` without a serve loop), and
automatic capture into the :class:`~repro.obs.tracing.SlowRequestLog`
ring so slow requests arrive with their plan attached.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar

from .metrics import PLAN_DECISIONS_TOTAL

__all__ = [
    "PLAN_DECISIONS",
    "INELIGIBILITY_REASONS",
    "MAX_DECISIONS",
    "PlanContext",
    "start_plan",
    "finish_plan",
    "current_plan",
    "using_plan",
    "decision",
    "count_decision",
    "clip",
    "render_plan",
]

#: The closed decision vocabulary, by layer.  Everything a plan may
#: record (and everything ``repro_plan_decisions_total`` may count) is
#: one of these ``(layer, decision)`` pairs; anything else is clamped to
#: ``other``.  ``docs/OBSERVABILITY.md`` carries this table and the doc
#: tests diff it against this constant.
PLAN_DECISIONS: dict[str, tuple[str, ...]] = {
    "router": ("digest", "alias", "builtin"),
    "batcher": ("matrix", "sparse", "direct", "oneshot", "fallback"),
    "engine": ("pair_memo", "store", "computed"),
    "docstore": ("projected", "unprojected", "from_store", "generated"),
    "pushdown": ("compiled", "ineligible"),
    "answer": ("pushdown", "materialized", "fallback"),
}

#: Why the pushdown compiler refused a query fragment, keyed by the
#: stable ``reason`` string carried in the ``pushdown: ineligible``
#: decision detail.  The table is documented in ``docs/OBSERVABILITY.md``
#: (diffed by the doc tests) and anchored from ``docs/PAPER-MAP.md``.
INELIGIBILITY_REASONS: dict[str, str] = {
    "non-step-source": (
        "a for-clause or tail step draws from something other than a "
        "single step off the chain's current context variable"
    ),
    "context-reuse": (
        "the bound variable is referenced again inside the loop body, "
        "so the nesting cannot be flattened into one step chain"
    ),
    "unsupported-axis": (
        "a step uses an axis outside self / child / descendant / "
        "descendant-or-self"
    ),
    "unsupported-test": (
        "a step's node test is not a name, text(), node(), or "
        "wildcard test"
    ),
    "non-step-tail": (
        "the expression's result node is not a step (e.g. element "
        "construction or a literal)"
    ),
}

#: Hard cap on decisions per plan: a speculative matrix flush can touch
#: thousands of pairs, and a plan must stay a bounded wire payload.
#: Records past the cap are counted in the report's ``dropped`` field.
MAX_DECISIONS = 512

_CURRENT: ContextVar["PlanContext | None"] = ContextVar("repro_plan", default=None)


class PlanContext:
    """One request's plan: an ordered list of layer decision records.

    Records are appended by whichever layer made the decision (via
    :func:`decision`) and rendered into the opt-in ``plan`` response
    field by :meth:`report`.  Appends are plain list appends, so the
    context is safe to share between the event loop and the single
    analysis worker thread a request's work is handed to.
    """

    __slots__ = ("started", "decisions", "dropped", "_token")

    def __init__(self) -> None:
        self.started = time.perf_counter()
        self.decisions: list[dict] = []
        self.dropped = 0
        self._token = None

    def add(self, layer: str, decision: str, **detail) -> None:
        """Append one decision record (``detail`` must be JSON-ready)."""
        if len(self.decisions) >= MAX_DECISIONS:
            self.dropped += 1
            return
        record: dict = {"layer": layer, "decision": decision}
        if detail:
            record["detail"] = detail
        self.decisions.append(record)

    def report(self, inner: dict | None = None) -> dict:
        """The wire-format ``plan`` field for this request.

        ``inner`` is a downstream layer's plan report (a shard worker's,
        when the router forwarded the request): it nests under a
        ``shard`` key, mirroring how trace reports fold shard timing.
        """
        report: dict = {
            "decisions": list(self.decisions),
            "total_ms": round((time.perf_counter() - self.started) * 1000.0, 3),
        }
        if self.dropped:
            report["dropped"] = self.dropped
        if inner:
            report["shard"] = inner
        return report


def start_plan() -> PlanContext:
    """Create a plan and install it as the current one; returns it."""
    plan = PlanContext()
    plan._token = _CURRENT.set(plan)
    return plan


def finish_plan(plan: PlanContext) -> None:
    """Uninstall ``plan`` (tolerates a plan installed elsewhere)."""
    token = getattr(plan, "_token", None)
    if token is not None:
        try:
            _CURRENT.reset(token)
        except ValueError:  # reset from a different context: just clear
            _CURRENT.set(None)


def current_plan() -> PlanContext | None:
    """The plan installed for the current request, if any."""
    return _CURRENT.get()


def count_decision(layer: str, name: str) -> None:
    """Tick ``repro_plan_decisions_total{layer,decision}`` for one decision.

    Always clamped to the closed :data:`PLAN_DECISIONS` vocabulary
    (unknown layers/decisions count as ``other``), so the counter's
    label cardinality is bounded no matter what callers pass.  Used
    directly when a decision should be counted but must *not* attach to
    whatever plan happens to be installed (e.g. the batcher counting a
    flush decision for a request that did not ask for an explanation).
    """
    allowed = PLAN_DECISIONS.get(layer)
    if allowed is None:
        PLAN_DECISIONS_TOTAL.labels(layer="other", decision="other").inc()
    else:
        PLAN_DECISIONS_TOTAL.labels(
            layer=layer, decision=name if name in allowed else "other"
        ).inc()


def decision(layer: str, name: str, plan: PlanContext | None = None, **detail) -> None:
    """Record one decision: count it, and attach it to the active plan.

    The ``repro_plan_decisions_total{layer,decision}`` counter is always
    incremented (via :func:`count_decision`), so the plan mix is
    scrapeable even when no request asked for an explanation.  The
    record itself is attached to ``plan`` when given, else to the
    current :class:`PlanContext` when one is installed, else discarded.
    """
    count_decision(layer, name)
    target = plan if plan is not None else _CURRENT.get()
    if target is not None:
        target.add(layer, name, **detail)


@contextmanager
def using_plan(plan: PlanContext):
    """Install ``plan`` as the current one for the ``with`` body.

    The worker-thread counterpart of :func:`start_plan`: the analysis
    executor installs the flush's batch plan (or a request's plan, for
    per-entry fallback analysis) around engine work so engine-recorded
    decisions land on the right context, then restores whatever was
    installed before.
    """
    token = _CURRENT.set(plan)
    try:
        yield plan
    finally:
        _CURRENT.reset(token)


def clip(text: str, limit: int = 200) -> str:
    """Bound an expression label carried in a decision detail.

    Plans ride in wire responses and the slow-request ring, so detail
    strings stay bounded; layers that label decisions with query/update
    sources all clip the same way, which keeps the labels comparable
    (the batcher matches engine records against entry sources by
    clipped normalized text).
    """
    return text if len(text) <= limit else text[: limit - 1] + "…"


def render_plan(report: dict, indent: int = 0) -> str:
    """Render a plan report as an indented decision tree (CLI output).

    Decisions print one per line as ``layer: decision`` with their
    detail keys sorted beneath; a folded shard plan nests one level
    deeper, so the router/worker structure reads as a tree.

    >>> plan = PlanContext()
    >>> plan.add("pushdown", "compiled", steps=2, sql="SELECT ...")
    >>> plan.add("answer", "pushdown")
    >>> print(render_plan(plan.report()))
    pushdown: compiled
      sql = SELECT ...
      steps = 2
    answer: pushdown
    """
    pad = "  " * indent
    lines = []
    for record in report.get("decisions", ()):
        lines.append(f"{pad}{record['layer']}: {record['decision']}")
        detail = record.get("detail") or {}
        for key in sorted(detail):
            lines.append(f"{pad}  {key} = {detail[key]}")
    if report.get("dropped"):
        lines.append(f"{pad}(+{report['dropped']} decisions dropped)")
    shard = report.get("shard")
    if shard:
        lines.append(f"{pad}shard:")
        lines.append(render_plan(shard, indent + 1))
    return "\n".join(lines)
