"""Dependency-free metrics: counters, gauges, log-spaced histograms.

Design constraints (ISSUE 8):

- **Cheap on the hot path.** A histogram observation is one ``bisect``
  over a fixed bucket-bound tuple plus integer increments; a counter is
  a single integer add.  Child handles are cached per label tuple, so
  steady-state instrumentation performs no allocation beyond the label
  lookup.
- **Mergeable across processes.**  ``MetricsRegistry.snapshot()``
  returns a plain JSON-serializable dict; :func:`merge_snapshots` sums
  any number of such snapshots (per-shard views) into the aggregate the
  router serves, exactly like ``/stats`` merges counters today.
- **No dependencies.**  Rendering to Prometheus text format lives in
  :mod:`repro.obs.export`; this module knows nothing about wire formats.

All serving-stack instruments are declared at the bottom of this module
as module-level families registered on the process-default
:data:`REGISTRY`.  Shard workers are separate processes, so each holds
its own registry; the router fans out the ``metrics`` op and merges.
``docs/OBSERVABILITY.md`` carries a table of these families that the doc
tests diff against the registry, so new instruments must be documented.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "SIZE_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "merge_snapshots",
    "histogram_quantile",
]

#: Log-spaced latency bucket upper bounds (seconds): 100 µs doubling up
#: to ~52 s, 20 finite buckets.  Chosen so one vocabulary covers a
#: sub-millisecond store lookup and a multi-second cold universe build.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = tuple(0.0001 * 2**i for i in range(20))

#: Log-spaced size bucket upper bounds (counts): 1 doubling to 1024.
SIZE_BOUNDS: tuple[float, ...] = tuple(float(2**i) for i in range(11))


class Counter:
    """A monotonically increasing integer, one per label tuple."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def data(self) -> dict:
        """Serializable state: ``{"value": n}``."""
        return {"value": self.value}

    def merge(self, data: dict) -> None:
        """Fold another process's serialized state into this child."""
        self.value += data["value"]


class Gauge:
    """A point-in-time number; merging sums across processes.

    The sum-on-merge convention matches ``/stats``: a per-shard resident
    document count merges into the fleet-wide total.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the gauge."""
        self.value += amount

    def data(self) -> dict:
        """Serializable state: ``{"value": x}``."""
        return {"value": self.value}

    def merge(self, data: dict) -> None:
        """Fold another process's serialized state into this child."""
        self.value += data["value"]


class Histogram:
    """Fixed-bound bucket histogram: one bisect + int increment per observe.

    ``counts`` holds per-bucket (non-cumulative) counts with one extra
    overflow slot for values above the last bound (the ``+Inf`` bucket);
    the Prometheus cumulative view is computed at export time.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample (``le`` semantics: bucket bound is inclusive)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def data(self) -> dict:
        """Serializable state: bounds, per-bucket counts, sum, count."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def merge(self, data: dict) -> None:
        """Fold another process's serialized state into this child."""
        if list(self.bounds) != data["bounds"]:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(data["counts"]):
            self.counts[i] += n
        self.sum += data["sum"]
        self.count += data["count"]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """One named metric with a fixed label schema and per-label children."""

    def __init__(
        self,
        kind: str,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS,
    ) -> None:
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.bounds = tuple(bounds)
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def labels(self, **labelvalues: str) -> Counter | Gauge | Histogram:
        """The child for one label-value assignment (created on first use)."""
        try:
            values = tuple(labelvalues[name] for name in self.labelnames)
        except KeyError as missing:
            raise ValueError(f"{self.name}: missing label {missing}") from None
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(f"{self.name}: labels must be exactly {self.labelnames}")
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.setdefault(values, self._make_child())
        return child

    def _make_child(self) -> Counter | Gauge | Histogram:
        if self.kind == "histogram":
            return Histogram(self.bounds)
        return _KINDS[self.kind]()

    # Unlabelled conveniences: families with no labelnames behave like a
    # single instrument.
    def observe(self, value: float) -> None:
        """Observe on the unlabelled child (histogram families only)."""
        self.labels().observe(value)

    def inc(self, amount: float = 1) -> None:
        """Increment the unlabelled child (counter/gauge families)."""
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        """Set the unlabelled child (gauge families only)."""
        self.labels().set(value)

    def data(self) -> dict:
        """Serializable family state, children keyed by JSON label tuple."""
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.labelnames),
            "children": {
                json.dumps(list(values)): child.data()
                for values, child in sorted(self._children.items())
            },
        }


class MetricsRegistry:
    """A named collection of metric families with mergeable snapshots."""

    def __init__(self) -> None:
        self._families: dict[str, Family] = {}

    def _register(self, kind: str, name: str, help: str, labelnames, bounds) -> Family:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != tuple(labelnames):
                raise ValueError(f"metric {name!r} re-registered with a different schema")
            return existing
        family = Family(kind, name, help, tuple(labelnames), tuple(bounds))
        self._families[name] = family
        return family

    def counter(self, name: str, help: str, labelnames: tuple[str, ...] = ()) -> Family:
        """Register (or fetch) a counter family."""
        return self._register("counter", name, help, labelnames, ())

    def gauge(self, name: str, help: str, labelnames: tuple[str, ...] = ()) -> Family:
        """Register (or fetch) a gauge family."""
        return self._register("gauge", name, help, labelnames, ())

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS,
    ) -> Family:
        """Register (or fetch) a histogram family with fixed bucket bounds."""
        return self._register("histogram", name, help, labelnames, bounds)

    def families(self) -> dict[str, Family]:
        """Registered families by name (live objects, do not mutate)."""
        return dict(self._families)

    def snapshot(self) -> dict:
        """A JSON-serializable snapshot: ``{"families": {name: ...}}``."""
        return {"families": {name: f.data() for name, f in sorted(self._families.items())}}


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Sum any number of registry snapshots into one aggregate snapshot.

    Families are united by name; children with identical label tuples
    have their counts/sums added, which is exactly "the router view is
    the sum of the per-shard views".  Mismatched kinds, label schemas,
    or histogram bounds raise ``ValueError``.
    """
    merged: dict[str, dict] = {}
    for snap in snapshots:
        for name, fam in snap.get("families", {}).items():
            target = merged.get(name)
            if target is None:
                merged[name] = {
                    "kind": fam["kind"],
                    "help": fam["help"],
                    "labels": list(fam["labels"]),
                    "children": {k: _copy_child(fam["kind"], v) for k, v in fam["children"].items()},
                }
                continue
            if target["kind"] != fam["kind"] or target["labels"] != fam["labels"]:
                raise ValueError(f"metric {name!r} has conflicting schemas across snapshots")
            for key, child in fam["children"].items():
                existing = target["children"].get(key)
                if existing is None:
                    target["children"][key] = _copy_child(fam["kind"], child)
                else:
                    _merge_child(fam["kind"], existing, child)
    return {"families": {name: merged[name] for name in sorted(merged)}}


def _copy_child(kind: str, data: dict) -> dict:
    if kind == "histogram":
        return {
            "bounds": list(data["bounds"]),
            "counts": list(data["counts"]),
            "sum": data["sum"],
            "count": data["count"],
        }
    return {"value": data["value"]}


def _merge_child(kind: str, target: dict, data: dict) -> None:
    if kind == "histogram":
        if target["bounds"] != data["bounds"]:
            raise ValueError("cannot merge histograms with different bounds")
        target["counts"] = [a + b for a, b in zip(target["counts"], data["counts"])]
        target["sum"] += data["sum"]
        target["count"] += data["count"]
    else:
        target["value"] += data["value"]


def histogram_quantile(child: dict, q: float) -> float:
    """Estimate the ``q``-quantile (0..1) from a histogram child snapshot.

    Linear interpolation inside the bucket that contains the target
    rank, Prometheus ``histogram_quantile`` style.  Samples in the
    overflow (``+Inf``) bucket clamp to the last finite bound (0.0 when
    the histogram has no finite bounds at all).  ``q`` outside [0, 1]
    clamps to the range; an empty histogram returns 0.0; ``q=0.0``
    returns the lower edge of the first occupied bucket.
    """
    total = child["count"]
    if total <= 0:
        return 0.0
    q = min(max(q, 0.0), 1.0)
    rank = q * total
    bounds = child["bounds"]
    seen = 0.0
    for i, n in enumerate(child["counts"]):
        if n == 0:
            continue
        lower = bounds[i - 1] if 0 < i <= len(bounds) else 0.0
        if i >= len(bounds):  # overflow bucket: clamp, no upper bound
            return float(bounds[-1]) if bounds else 0.0
        if seen + n >= rank:
            upper = bounds[i]
            fraction = (rank - seen) / n
            return lower + fraction * (upper - lower)
        seen += n
    return float(bounds[-1]) if bounds else 0.0


#: Process-default registry.  Each shard worker is its own process, so
#: this is naturally a per-shard view; the router merges.
REGISTRY = MetricsRegistry()

# --- Serving-stack instrument inventory (documented in
# --- docs/OBSERVABILITY.md; the doc test diffs that table against this
# --- registry, so additions here must be documented there).

REQUEST_SECONDS = REGISTRY.histogram(
    "repro_request_seconds",
    "Wire request latency by op; role=router on the shard router, role=service in workers.",
    ("op", "role"),
)
REQUEST_ERRORS = REGISTRY.counter(
    "repro_request_errors_total",
    "Error responses by op and error code.",
    ("op", "code", "role"),
)
CONNECTIONS = REGISTRY.counter(
    "repro_connections_total",
    "Accepted wire connections.",
    ("role",),
)
SLOW_REQUESTS = REGISTRY.counter(
    "repro_slow_requests_total",
    "Requests slower than the --slow-ms threshold.",
    ("op", "role"),
)
BATCH_QUEUE_WAIT = REGISTRY.histogram(
    "repro_batch_queue_wait_seconds",
    "Time a request waits in the admission batcher before its flush starts.",
)
BATCH_FLUSH_SECONDS = REGISTRY.histogram(
    "repro_batch_flush_seconds",
    "Wall time of one admission-batch flush (analysis plus store commit).",
)
BATCH_SIZE = REGISTRY.histogram(
    "repro_batch_size_requests",
    "Coalesced requests per admission-batch flush.",
    bounds=SIZE_BOUNDS,
)
ENGINE_UNIVERSE_SECONDS = REGISTRY.histogram(
    "repro_engine_universe_build_seconds",
    "Type-universe construction time per (schema, k) state.",
)
ENGINE_INFERENCE_SECONDS = REGISTRY.histogram(
    "repro_engine_inference_seconds",
    "Chain-inference time per uncached expression, by expression kind.",
    ("kind",),
)
ENGINE_STORE_SECONDS = REGISTRY.histogram(
    "repro_engine_store_lookup_seconds",
    "Persistent verdict-store lookup time in analyze_pair, by outcome.",
    ("outcome",),
)
STORE_OP_SECONDS = REGISTRY.histogram(
    "repro_store_op_seconds",
    "Document-store operation latency (save, load, run_steps).",
    ("op",),
)
DOC_QUERY_SECONDS = REGISTRY.histogram(
    "repro_doc_query_seconds",
    "doc.query evaluation latency by execution mode (materialized, pushdown, fallback).",
    ("mode",),
)
DOCUMENTS_LOADED = REGISTRY.gauge(
    "repro_documents_loaded",
    "Documents currently resident in the in-process document cache.",
)
SHARD_ROUTED = REGISTRY.counter(
    "repro_shard_routed_total",
    "Requests the router forwarded, by shard index.",
    ("shard",),
)
PLAN_DECISIONS_TOTAL = REGISTRY.counter(
    "repro_plan_decisions_total",
    "Plan decisions by layer; the closed vocabulary lives in repro.obs.plan.",
    ("layer", "decision"),
)
