"""Request-scoped trace contexts, the slow-request ring, and the slow log.

Every wire request gets a :class:`TraceContext` (trace id plus timed
spans) installed in a :class:`contextvars.ContextVar` for the duration
of its dispatch, so any layer on the request path can attach spans
without plumbing a handle through every signature.  Span durations come
from ``time.perf_counter()`` only (see ``tests/test_timing_discipline``).

Span-name vocabulary (documented in ``docs/OBSERVABILITY.md``, diffed by
the doc tests):

- ``router`` — router-side round-trip for a forwarded request (resolve
  shard, forward over the ``ShardLink``, await the response).
- ``shard`` — total time inside the shard worker, as reported by the
  worker's own trace (synthesized by the router when merging).
- ``queue_wait`` — time spent in the admission batcher between submit
  and the start of the flush that served the request.
- ``engine`` — analysis/evaluation work on the analysis thread (for a
  coalesced batch this is the shared flush's engine time).
- ``store`` — verdict/document-store work: group commit for ``analyze``,
  save/load/run_steps for the document ops.
"""

from __future__ import annotations

import json
import time
import uuid
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from datetime import datetime, timezone

__all__ = [
    "SPAN_NAMES",
    "TraceContext",
    "SlowRequestLog",
    "start_trace",
    "finish_trace",
    "current_trace",
    "span",
]

#: The closed span-name vocabulary used by the serving stack.
SPAN_NAMES: tuple[str, ...] = ("router", "shard", "queue_wait", "engine", "store")

_CURRENT: ContextVar["TraceContext | None"] = ContextVar("repro_trace", default=None)


class TraceContext:
    """One request's trace: an id plus ``(name, seconds)`` spans.

    Spans are appended by whichever layer measured them (always on the
    event loop, so no locking is needed) and rendered into the opt-in
    ``timing`` response field by :meth:`report`.
    """

    __slots__ = ("trace_id", "started", "spans", "_token")

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.started = time.perf_counter()
        self.spans: list[tuple[str, float]] = []
        self._token = None

    def add_span(self, name: str, seconds: float) -> None:
        """Record one timed span."""
        self.spans.append((name, seconds))

    @contextmanager
    def span(self, name: str):
        """Context manager timing its body into a span named ``name``."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.add_span(name, time.perf_counter() - t0)

    def report(self, inner: dict | None = None) -> dict:
        """The wire-format ``timing`` breakdown for this trace.

        ``inner`` is a downstream layer's report (a shard worker's, when
        the router forwarded the request): its total becomes a ``shard``
        span and its spans are appended after the local ones.
        """
        spans = [{"name": name, "ms": round(seconds * 1000.0, 3)} for name, seconds in self.spans]
        if inner:
            spans.append({"name": "shard", "ms": inner.get("total_ms", 0.0)})
            spans.extend(inner.get("spans", ()))
        return {
            "trace": self.trace_id,
            "total_ms": round((time.perf_counter() - self.started) * 1000.0, 3),
            "spans": spans,
        }


def start_trace(trace_id: str | None = None) -> TraceContext:
    """Create a trace and install it as the current one; returns it."""
    trace = TraceContext(trace_id)
    trace._token = _CURRENT.set(trace)
    return trace


def finish_trace(trace: TraceContext) -> None:
    """Uninstall ``trace`` (tolerates a trace installed elsewhere)."""
    token = getattr(trace, "_token", None)
    if token is not None:
        try:
            _CURRENT.reset(token)
        except ValueError:  # reset from a different context: just clear
            _CURRENT.set(None)


def current_trace() -> TraceContext | None:
    """The trace installed for the current request, if any."""
    return _CURRENT.get()


@contextmanager
def span(name: str):
    """Time the body into a span on the current trace (no-op without one)."""
    trace = _CURRENT.get()
    if trace is None:
        yield None
        return
    with trace.span(name):
        yield trace


class SlowRequestLog:
    """Bounded ring of slow requests plus an optional JSON-lines file.

    A request whose wall time meets ``threshold_ms`` is recorded as a
    structured entry ``{"ts", "trace", "op", "total_ms", "spans", "ok"}``
    in an in-memory ring (``capacity`` most recent) and, when a path was
    configured, appended as one JSON line to the slow log file.
    """

    def __init__(self, threshold_ms: float = 0.0, path: str = "", capacity: int = 128) -> None:
        self.threshold_ms = threshold_ms
        self.path = path
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._file = None

    @property
    def enabled(self) -> bool:
        """True when a positive threshold was configured."""
        return self.threshold_ms > 0.0

    def record(
        self, op: str, trace: TraceContext, total_ms: float, ok: bool, plan: dict | None = None
    ) -> dict | None:
        """Record one request if it crossed the threshold; returns the entry.

        ``plan`` is the request's rendered plan report (see
        :mod:`repro.obs.plan`), attached when the server captured one so
        slow requests arrive with their EXPLAIN output in hand.
        """
        if not self.enabled or total_ms < self.threshold_ms:
            return None
        entry = {
            "ts": datetime.now(timezone.utc).isoformat(timespec="milliseconds"),
            "trace": trace.trace_id,
            "op": op,
            "total_ms": round(total_ms, 3),
            "spans": {name: round(seconds * 1000.0, 3) for name, seconds in trace.spans},
            "ok": ok,
        }
        if plan is not None:
            entry["plan"] = plan
        self._ring.append(entry)
        if self.path:
            if self._file is None:
                self._file = open(self.path, "a", encoding="utf-8")
            self._file.write(json.dumps(entry, sort_keys=True) + "\n")
            self._file.flush()
        return entry

    def entries(self) -> list[dict]:
        """The ring contents, oldest first."""
        return list(self._ring)

    def close(self) -> None:
        """Close the slow-log file handle, if one was opened."""
        if self._file is not None:
            self._file.close()
            self._file = None
