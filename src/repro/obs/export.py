"""Prometheus text-format exposition and the ``/metrics`` HTTP listener.

:func:`render` turns a registry snapshot (or a merged multi-shard
snapshot, see :func:`repro.obs.metrics.merge_snapshots`) into the
Prometheus text exposition format, version 0.0.4:

- ``# HELP`` / ``# TYPE`` header lines per family, families sorted by
  name;
- histograms as cumulative ``<name>_bucket{le="..."}`` series with a
  terminal ``le="+Inf"`` bucket equal to ``<name>_count``, plus
  ``<name>_sum`` and ``<name>_count``;
- label values escaped per the exposition grammar (backslash, quote,
  newline).

:func:`serve_metrics_http` is a deliberately tiny asyncio HTTP/1.1
server answering ``GET /metrics`` so a real Prometheus can scrape the
router without any extra dependency.  :func:`parse_exposition` is its
inverse: it reads exposition text back into a snapshot-shaped dict, so
the ``repro metrics`` CLI can summarize an HTTP scrape exactly like a
wire-op snapshot.
"""

from __future__ import annotations

import asyncio
import json
import re
from collections.abc import Awaitable, Callable

__all__ = ["CONTENT_TYPE", "parse_exposition", "render", "serve_metrics_http"]

#: The exposition content type served over HTTP.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    return format(bound, ".10g")


def _labelstr(names: list[str], values: list[str], extra: tuple[str, str] | None = None) -> str:
    pairs = [f'{n}="{_escape(str(v))}"' for n, v in zip(names, values)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render(snapshot: dict) -> str:
    """Render a (possibly merged) registry snapshot to exposition text."""
    out: list[str] = []
    for name, family in sorted(snapshot.get("families", {}).items()):
        kind = family["kind"]
        out.append(f"# HELP {name} {family['help']}")
        out.append(f"# TYPE {name} {kind}")
        labelnames = list(family["labels"])
        for key, child in sorted(family["children"].items()):
            values = json.loads(key)
            if kind == "histogram":
                cumulative = 0
                for i, bucket_count in enumerate(child["counts"]):
                    cumulative += bucket_count
                    le = (
                        _format_bound(child["bounds"][i])
                        if i < len(child["bounds"])
                        else "+Inf"
                    )
                    labels = _labelstr(labelnames, values, extra=("le", le))
                    out.append(f"{name}_bucket{labels} {cumulative}")
                labels = _labelstr(labelnames, values)
                out.append(f"{name}_sum{labels} {_format_value(child['sum'])}")
                out.append(f"{name}_count{labels} {child['count']}")
            else:
                labels = _labelstr(labelnames, values)
                out.append(f"{name}{labels} {_format_value(child['value'])}")
    return "\n".join(out) + "\n" if out else ""


#: One ``label="value"`` pair inside a series' label braces.
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_series(line: str) -> tuple[str, dict[str, str], float] | None:
    """Split one sample line into ``(name, labels, value)``."""
    if line.startswith("{"):
        return None
    brace = line.find("{")
    if brace >= 0:
        close = line.rfind("}")
        if close < brace:
            return None
        name = line[:brace]
        labels = {
            key: _unescape(raw)
            for key, raw in _LABEL_RE.findall(line[brace + 1:close])
        }
        rest = line[close + 1:].strip()
    else:
        name, _, rest = line.partition(" ")
        labels = {}
        rest = rest.strip()
    try:
        value = float(rest.split()[0])
    except (IndexError, ValueError):
        return None
    return name, labels, value


def parse_exposition(text: str) -> dict:
    """Parse exposition text back into a snapshot-shaped dict.

    The inverse of :func:`render`, shaped like
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot` --
    ``{"families": {name: {kind, help, labels, children}}}`` with
    histogram children carrying per-bucket (non-cumulative) ``counts``
    alongside ``bounds``/``sum``/``count`` -- so snapshot consumers
    (:func:`repro.obs.metrics.histogram_quantile`, the ``repro
    metrics`` CLI table) work identically on an HTTP scrape.  Series
    without a ``# TYPE`` header are treated as untyped gauges.
    """
    families: dict[str, dict] = {}

    def family(name: str, kind: str | None = None) -> dict:
        entry = families.setdefault(
            name, {"kind": "gauge", "help": "", "labels": [], "children": {}}
        )
        if kind is not None:
            entry["kind"] = kind
        return entry

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "HELP":
                family(parts[2])["help"] = parts[3] if len(parts) > 3 else ""
            elif len(parts) >= 4 and parts[1] == "TYPE":
                family(parts[2], kind=parts[3])
            continue
        parsed = _parse_series(line)
        if parsed is None:
            continue
        name, labels, value = parsed
        base = name
        suffix = None
        for candidate in ("_bucket", "_sum", "_count"):
            stem = name[: -len(candidate)] if name.endswith(candidate) else None
            if stem and families.get(stem, {}).get("kind") == "histogram":
                base, suffix = stem, candidate
                break
        entry = family(base)
        if suffix == "_bucket":
            bound = labels.pop("le", "+Inf")
        labelnames = sorted(labels)
        if len(labelnames) > len(entry["labels"]):
            entry["labels"] = labelnames
        key = json.dumps([labels[n] for n in labelnames])
        if entry["kind"] == "histogram":
            child = entry["children"].setdefault(
                key, {"bounds": [], "cumulative": [], "sum": 0.0, "count": 0}
            )
            if suffix == "_bucket":
                if bound != "+Inf":
                    child["bounds"].append(float(bound))
                child["cumulative"].append(value)
            elif suffix == "_sum":
                child["sum"] = value
            elif suffix == "_count":
                child["count"] = int(value)
        else:
            entry["children"][key] = {"value": value}
    for entry in families.values():
        if entry["kind"] != "histogram":
            continue
        for child in entry["children"].values():
            cumulative = child.pop("cumulative", [])
            counts, previous = [], 0.0
            for total in cumulative:
                counts.append(int(total - previous))
                previous = total
            # render() always emits a terminal +Inf bucket, so counts
            # already covers len(bounds) + 1 slots.
            child["counts"] = counts
    return {"families": families}


async def serve_metrics_http(
    host: str,
    port: int,
    supplier: Callable[[], Awaitable[str]],
) -> asyncio.Server:
    """Start an HTTP listener answering ``GET /metrics`` from ``supplier``.

    ``supplier`` is awaited per scrape and must return exposition text
    (the caller decides whether that is the local registry or a merged
    fan-out view).  Anything but ``GET /metrics`` gets a 404; responses
    close the connection.  Returns the ``asyncio.Server`` (caller owns
    shutdown).
    """

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            while True:  # drain headers up to the blank line
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
            parts = request_line.split()
            path = parts[1].decode("ascii", "replace").split("?", 1)[0] if len(parts) > 1 else ""
            if len(parts) > 1 and parts[0] == b"GET" and path == "/metrics":
                body = (await supplier()).encode("utf-8")
                status, ctype = b"200 OK", CONTENT_TYPE.encode("ascii")
            else:
                body = b"not found\n"
                status, ctype = b"404 Not Found", b"text/plain; charset=utf-8"
            writer.write(
                b"HTTP/1.1 " + status + b"\r\n"
                b"Content-Type: " + ctype + b"\r\n"
                b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return await asyncio.start_server(handle, host, port)
