"""Observability layer: metrics registry, request tracing, Prometheus export.

``repro.obs`` is dependency-free (standard library only) and imported by
every layer of the serving stack:

- :mod:`repro.obs.metrics` — counters, gauges, and log-spaced-bucket
  latency histograms in a process-wide registry whose snapshots are
  JSON-serializable and mergeable across shard processes.
- :mod:`repro.obs.tracing` — request-scoped trace contexts with timed
  spans, plus the bounded slow-request ring and JSON-lines slow log.
- :mod:`repro.obs.plan` — request-scoped query plans (EXPLAIN): every
  layer attaches structured decision records to a ``PlanContext``.
- :mod:`repro.obs.export` — Prometheus text-format exposition of a
  registry snapshot and the tiny ``/metrics`` HTTP listener.

The instrument inventory (one module-level family per metric) lives in
:mod:`repro.obs.metrics` so that ``docs/OBSERVABILITY.md`` can be diffed
against it by the doc tests.
"""

from .metrics import REGISTRY, MetricsRegistry, merge_snapshots
from .plan import PlanContext, current_plan, decision, finish_plan, render_plan, start_plan
from .tracing import TraceContext, current_trace, span, start_trace

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "merge_snapshots",
    "PlanContext",
    "current_plan",
    "decision",
    "finish_plan",
    "render_plan",
    "start_plan",
    "TraceContext",
    "current_trace",
    "span",
    "start_trace",
]
