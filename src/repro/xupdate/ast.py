"""Core AST for the XQuery Update Facility fragment (Section 2).

::

    u ::= () | u,u | for x in q return u | let x := q return u
        | if q then u1 else u2
        | delete q0 | rename q0 as a
        | insert q pos q0 | replace q0 with q

    pos ::= before | after | into (as first | as last)?
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

from ..util import slots_getstate, slots_setstate
from ..xquery.ast import Query, free_variables as query_free_variables
from ..xquery.ast import query_size


class InsertPos(Enum):
    """Insertion positions of the update grammar."""

    BEFORE = "before"
    AFTER = "after"
    INTO = "into"
    INTO_FIRST = "as first into"
    INTO_LAST = "as last into"

    @property
    def is_into(self) -> bool:
        """True for the three child-insertion positions."""
        return self in (InsertPos.INTO, InsertPos.INTO_FIRST,
                        InsertPos.INTO_LAST)


@dataclass(frozen=True)
class Update:
    """Base class of core update AST nodes."""

    __slots__ = ()
    __getstate__ = slots_getstate
    __setstate__ = slots_setstate


@dataclass(frozen=True)
class UEmpty(Update):
    """The empty update ``()``."""

    __slots__ = ()

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class UConcat(Update):
    """Update sequence ``u1, u2``."""

    left: Update
    right: Update

    __slots__ = ("left", "right")

    def __str__(self) -> str:
        return f"{self.left}, {self.right}"


@dataclass(frozen=True)
class UFor(Update):
    """``for x in q return u``."""

    var: str
    source: Query
    body: Update

    __slots__ = ("var", "source", "body")

    def __str__(self) -> str:
        return f"for {self.var} in {self.source} return {self.body}"


@dataclass(frozen=True)
class ULet(Update):
    """``let x := q return u``."""

    var: str
    source: Query
    body: Update

    __slots__ = ("var", "source", "body")

    def __str__(self) -> str:
        return f"let {self.var} := {self.source} return {self.body}"


@dataclass(frozen=True)
class UIf(Update):
    """``if q then u1 else u2``."""

    cond: Query
    then: Update
    orelse: Update

    __slots__ = ("cond", "then", "orelse")

    def __str__(self) -> str:
        return f"if ({self.cond}) then {self.then} else {self.orelse}"


@dataclass(frozen=True)
class Delete(Update):
    """``delete q0``."""

    target: Query

    __slots__ = ("target",)

    def __str__(self) -> str:
        return f"delete {self.target}"


@dataclass(frozen=True)
class Rename(Update):
    """``rename q0 as a``."""

    target: Query
    tag: str

    __slots__ = ("target", "tag")

    def __str__(self) -> str:
        return f"rename {self.target} as {self.tag}"


@dataclass(frozen=True)
class Insert(Update):
    """``insert q pos q0`` (source, position, target)."""

    source: Query
    pos: InsertPos
    target: Query

    __slots__ = ("source", "pos", "target")

    def __str__(self) -> str:
        return f"insert {self.source} {self.pos.value} {self.target}"


@dataclass(frozen=True)
class Replace(Update):
    """``replace q0 with q``."""

    target: Query
    source: Query

    __slots__ = ("target", "source")

    def __str__(self) -> str:
        return f"replace {self.target} with {self.source}"


@lru_cache(maxsize=4096)
def update_free_variables(u: Update) -> frozenset[str]:
    """Free variables of a core update."""
    if isinstance(u, UEmpty):
        return frozenset()
    if isinstance(u, UConcat):
        return update_free_variables(u.left) | update_free_variables(u.right)
    if isinstance(u, (UFor, ULet)):
        return query_free_variables(u.source) | (
            update_free_variables(u.body) - {u.var}
        )
    if isinstance(u, UIf):
        return (
            query_free_variables(u.cond)
            | update_free_variables(u.then)
            | update_free_variables(u.orelse)
        )
    if isinstance(u, Delete):
        return query_free_variables(u.target)
    if isinstance(u, Rename):
        return query_free_variables(u.target)
    if isinstance(u, Insert):
        return query_free_variables(u.source) | query_free_variables(u.target)
    if isinstance(u, Replace):
        return query_free_variables(u.target) | query_free_variables(u.source)
    raise TypeError(f"unknown update node {u!r}")


def update_size(u: Update) -> int:
    """``|u|``: number of AST nodes."""
    if isinstance(u, UEmpty):
        return 1
    if isinstance(u, UConcat):
        return 1 + update_size(u.left) + update_size(u.right)
    if isinstance(u, (UFor, ULet)):
        return 1 + query_size(u.source) + update_size(u.body)
    if isinstance(u, UIf):
        return (
            1 + query_size(u.cond) + update_size(u.then)
            + update_size(u.orelse)
        )
    if isinstance(u, Delete):
        return 1 + query_size(u.target)
    if isinstance(u, Rename):
        return 1 + query_size(u.target)
    if isinstance(u, Insert):
        return 1 + query_size(u.source) + query_size(u.target)
    if isinstance(u, Replace):
        return 1 + query_size(u.target) + query_size(u.source)
    raise TypeError(f"unknown update node {u!r}")
