"""Parser for the update fragment, reusing the query parser's machinery.

Accepts both the paper's concise syntax (``delete q0``,
``insert q into q0``) and the W3C's keyworded forms (``delete nodes q0``,
``insert node q as first into q0``, ``replace node q0 with q``,
``rename node q0 as a``).
"""

from __future__ import annotations

from ..xquery.parser import QueryParser
from .ast import (
    Delete,
    Insert,
    InsertPos,
    Rename,
    Replace,
    UConcat,
    UEmpty,
    UFor,
    UIf,
    ULet,
    Update,
)


class UpdateParser(QueryParser):
    """Extends the query parser with the update grammar."""

    def parse_update_text(self) -> Update:
        update = self._parse_update_expr()
        if not self.cursor.at_end():
            raise self.cursor.error("trailing input")
        return update

    def _parse_update_expr(self) -> Update:
        parts = [self._parse_update_single()]
        while self.cursor.take(","):
            parts.append(self._parse_update_single())
        update = parts[0]
        for part in parts[1:]:
            update = UConcat(update, part)
        return update

    def _parse_update_single(self) -> Update:
        cur = self.cursor
        if cur.peek_keyword("for"):
            cur.expect_keyword("for")
            var = cur.take_variable()
            cur.expect_keyword("in")
            source = self.parse_single()
            cur.expect_keyword("return")
            body = self._parse_update_single()
            return UFor(var, source, body)
        if cur.peek_keyword("let"):
            cur.expect_keyword("let")
            var = cur.take_variable()
            cur.expect(":=")
            source = self.parse_single()
            cur.expect_keyword("return")
            body = self._parse_update_single()
            return ULet(var, source, body)
        if cur.peek_keyword("if"):
            cur.expect_keyword("if")
            cur.expect("(")
            cond = self.parse_expr()
            cur.expect(")")
            cur.expect_keyword("then")
            then = self._parse_update_single()
            cur.expect_keyword("else")
            orelse = self._parse_update_single()
            return UIf(cond, then, orelse)
        if cur.peek_keyword("delete"):
            cur.expect_keyword("delete")
            self._skip_node_keyword()
            return Delete(self.parse_single())
        if cur.peek_keyword("rename"):
            cur.expect_keyword("rename")
            self._skip_node_keyword()
            target = self.parse_single()
            cur.expect_keyword("as")
            return Rename(target, cur.take_name())
        if cur.peek_keyword("insert"):
            cur.expect_keyword("insert")
            self._skip_node_keyword()
            source = self.parse_single()
            pos = self._parse_insert_pos()
            return Insert(source, pos, self.parse_single())
        if cur.peek_keyword("replace"):
            cur.expect_keyword("replace")
            self._skip_node_keyword()
            target = self.parse_single()
            cur.expect_keyword("with")
            return Replace(target, self.parse_single())
        if cur.peek("("):
            cur.expect("(")
            if cur.take(")"):
                return UEmpty()
            inner = self._parse_update_expr()
            cur.expect(")")
            return inner
        raise cur.error("expected an update expression")

    def _skip_node_keyword(self) -> None:
        cur = self.cursor
        if cur.peek_keyword("node") or cur.peek_keyword("nodes"):
            save = cur.pos
            word = cur.take_name()
            # ``node()`` here would be a node test, not the keyword.
            if cur.peek("("):
                cur.pos = save
                return
            del word

    def _parse_insert_pos(self) -> InsertPos:
        cur = self.cursor
        if cur.take_keyword("before"):
            return InsertPos.BEFORE
        if cur.take_keyword("after"):
            return InsertPos.AFTER
        if cur.take_keyword("into"):
            return InsertPos.INTO
        if cur.take_keyword("as"):
            if cur.take_keyword("first"):
                cur.expect_keyword("into")
                return InsertPos.INTO_FIRST
            if cur.take_keyword("last"):
                cur.expect_keyword("into")
                return InsertPos.INTO_LAST
            raise cur.error("expected 'first' or 'last'")
        raise cur.error("expected an insert position")


def parse_update(text: str) -> Update:
    """Parse surface update text into the core update AST.

    >>> parse_update("delete $x/child::a")
    Delete(target=Step(var='$x', axis=<Axis.CHILD: 'child'>, test=NameTest(name='a')))
    """
    return UpdateParser(text).parse_update_text()
