"""Update evaluation: ``sigma, gamma |= u => sigma_w, w`` and application.

:func:`evaluate_update` creates the UPL (phase i); :func:`apply_update`
composes the three phases (``sigma, gamma |= u : sigma_u``).  Source
expressions of insert/replace are deep-copied into the store at UPL
creation time (W3C copy semantics), so the UPL's source locations are the
fresh roots of ``sigma_w``.
"""

from __future__ import annotations

from ..xmldm.store import Location, Store
from ..xquery.ast import ROOT_VAR
from ..xquery.evaluator import Environment, evaluate_query
from .ast import (
    Delete,
    Insert,
    Rename,
    Replace,
    UConcat,
    UEmpty,
    UFor,
    UIf,
    ULet,
    Update,
)
from .pul import Command, Del, Ins, Ren, Repl, UpdateError, apply_pul, check_pul


def evaluate_update(update: Update, store: Store, env: Environment
                    ) -> list[Command]:
    """Phase (i): build the UPL for ``update``; extends ``store`` to sigma_w."""
    return _eval(update, store, env)


def _eval(update: Update, store: Store, env: Environment) -> list[Command]:
    if isinstance(update, UEmpty):
        return []
    if isinstance(update, UConcat):
        return _eval(update.left, store, env) + _eval(update.right, store, env)
    if isinstance(update, UFor):
        source = evaluate_query(update.source, store, env)
        commands: list[Command] = []
        for item in source:
            inner = dict(env)
            inner[update.var] = [item]
            commands.extend(_eval(update.body, store, inner))
        return commands
    if isinstance(update, ULet):
        source = evaluate_query(update.source, store, env)
        inner = dict(env)
        inner[update.var] = source
        return _eval(update.body, store, inner)
    if isinstance(update, UIf):
        cond = evaluate_query(update.cond, store, env)
        branch = update.then if cond else update.orelse
        return _eval(branch, store, env)
    if isinstance(update, Delete):
        targets = evaluate_query(update.target, store, env)
        return [Del(target) for target in targets]
    if isinstance(update, Rename):
        target = _single_target(update.target, store, env, "rename")
        return [Ren(target, update.tag)]
    if isinstance(update, Insert):
        sources = evaluate_query(update.source, store, env)
        copies = tuple(store.copy_subtree(store, loc) for loc in sources)
        target = _single_target(update.target, store, env, "insert")
        return [Ins(copies, update.pos, target)]
    if isinstance(update, Replace):
        target = _single_target(update.target, store, env, "replace")
        sources = evaluate_query(update.source, store, env)
        copies = tuple(store.copy_subtree(store, loc) for loc in sources)
        return [Repl(target, copies)]
    raise UpdateError(f"unknown update node {update!r}")


def _single_target(query, store: Store, env: Environment, kind: str
                   ) -> Location:
    """W3C: insert/replace/rename targets must be exactly one node."""
    result = evaluate_query(query, store, env)
    if len(result) != 1:
        raise UpdateError(
            f"{kind} target produced {len(result)} nodes (exactly 1 required)"
        )
    return result[0]


def apply_update(update: Update, store: Store, env: Environment
                 ) -> list[Command]:
    """All three phases: ``sigma, gamma |= u : sigma_u`` (in place).

    Returns the applied UPL (useful for inspection in tests).
    """
    commands = evaluate_update(update, store, env)
    check_pul(store, commands)
    apply_pul(store, commands)
    return commands


def apply_update_to_root(update: Update, store: Store, root: Location
                         ) -> list[Command]:
    """Quasi-closed convenience: bind the root variable and apply."""
    return apply_update(update, store, {ROOT_VAR: [root]})
