"""Update pending lists (UPLs) and their application (Section 2).

Update evaluation is split into the W3C's three phases:

1. creation of the UPL ``w`` (:mod:`repro.xupdate.evaluator`);
2. sanity checks on ``w`` (:func:`check_pul`);
3. application ``sigma_w |- w ~> sigma_u`` (:func:`apply_pul`).

Commands mirror the paper's grammar::

    iota ::= ins(L, pos, l) | del(l) | repl(l, L) | ren(l, a)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..xmldm.store import Location, Store
from .ast import InsertPos


class UpdateError(ValueError):
    """Raised on dynamic update errors (W3C sanity-check failures)."""


@dataclass(frozen=True)
class Command:
    """Base class for elementary update commands."""

    __slots__ = ()


@dataclass(frozen=True)
class Ins(Command):
    """``ins(L, pos, l)``: insert roots ``sources`` at ``pos`` w.r.t. ``target``."""

    sources: tuple[Location, ...]
    pos: InsertPos
    target: Location

    __slots__ = ("sources", "pos", "target")


@dataclass(frozen=True)
class Del(Command):
    """``del(l)``: delete the subtree rooted at ``target``."""

    target: Location

    __slots__ = ("target",)


@dataclass(frozen=True)
class Repl(Command):
    """``repl(l, L)``: replace ``target`` with roots ``sources``."""

    target: Location
    sources: tuple[Location, ...]

    __slots__ = ("target", "sources")


@dataclass(frozen=True)
class Ren(Command):
    """``ren(l, a)``: rename element ``target`` to ``tag``."""

    target: Location
    tag: str

    __slots__ = ("target", "tag")


def check_pul(store: Store, commands: list[Command]) -> None:
    """Phase (ii) sanity checks; raises :class:`UpdateError` on violation.

    Checks (after the W3C XQUF compatibility rules):

    * no two ``ren`` commands on the same target (err:XUDY0015);
    * no two ``repl`` commands on the same target (err:XUDY0016);
    * every target exists in the store;
    * ``repl`` and sibling-position ``ins`` targets must have a parent;
    * ``ren`` targets must be element nodes.
    """
    renamed: set[Location] = set()
    replaced: set[Location] = set()
    for command in commands:
        if isinstance(command, Ren):
            if command.target in renamed:
                raise UpdateError(
                    f"two rename commands target location {command.target}"
                )
            renamed.add(command.target)
            if command.target not in store:
                raise UpdateError(f"rename of unknown location {command.target}")
            if not store.is_element(command.target):
                raise UpdateError(
                    f"rename target {command.target} is not an element"
                )
        elif isinstance(command, Repl):
            if command.target in replaced:
                raise UpdateError(
                    f"two replace commands target location {command.target}"
                )
            replaced.add(command.target)
            if command.target not in store:
                raise UpdateError(
                    f"replace of unknown location {command.target}"
                )
            if store.parent(command.target) is None:
                raise UpdateError(
                    f"replace target {command.target} has no parent"
                )
        elif isinstance(command, Ins):
            if command.target not in store:
                raise UpdateError(
                    f"insert at unknown location {command.target}"
                )
            if command.pos.is_into:
                if not store.is_element(command.target):
                    raise UpdateError(
                        f"insert-into target {command.target} is not an element"
                    )
            elif store.parent(command.target) is None:
                raise UpdateError(
                    f"insert-{command.pos.value} target {command.target} "
                    "has no parent"
                )
        elif isinstance(command, Del):
            if command.target not in store:
                raise UpdateError(
                    f"delete of unknown location {command.target}"
                )
        else:
            raise UpdateError(f"unknown command {command!r}")


def apply_pul(store: Store, commands: list[Command]) -> None:
    """Phase (iii): apply ``commands`` to ``store`` in place.

    Application order follows the W3C's staging: renames, then inserts,
    then replaces, then deletes.  This makes combinations such as "insert
    next to a node that is also deleted" deterministic.
    """
    for command in commands:
        if isinstance(command, Ren):
            store.rename(command.target, command.tag)
    for command in commands:
        if isinstance(command, Ins):
            _apply_insert(store, command)
    for command in commands:
        if isinstance(command, Repl):
            _apply_replace(store, command)
    for command in commands:
        if isinstance(command, Del):
            store.detach(command.target)


def _apply_insert(store: Store, command: Ins) -> None:
    sources = list(command.sources)
    if command.pos.is_into:
        kids = store.children(command.target)
        if command.pos is InsertPos.INTO_FIRST:
            store.replace_children(command.target, sources + kids)
        else:  # INTO and INTO_LAST both append.
            store.replace_children(command.target, kids + sources)
        return
    parent = store.parent(command.target)
    if parent is None:
        raise UpdateError(
            f"insert-{command.pos.value} target {command.target} lost its parent"
        )
    kids = store.children(parent)
    index = kids.index(command.target)
    if command.pos is InsertPos.BEFORE:
        new_kids = kids[:index] + sources + kids[index:]
    else:
        new_kids = kids[:index + 1] + sources + kids[index + 1:]
    store.replace_children(parent, new_kids)


def _apply_replace(store: Store, command: Repl) -> None:
    parent = store.parent(command.target)
    if parent is None:
        raise UpdateError(f"replace target {command.target} lost its parent")
    kids = store.children(parent)
    index = kids.index(command.target)
    new_kids = kids[:index] + list(command.sources) + kids[index + 1:]
    store.replace_children(parent, new_kids)
