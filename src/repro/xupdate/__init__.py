"""XQuery Update Facility fragment: AST, parser, UPL, evaluation."""

from .ast import (
    Delete,
    Insert,
    InsertPos,
    Rename,
    Replace,
    UConcat,
    UEmpty,
    UFor,
    UIf,
    ULet,
    Update,
    update_free_variables,
    update_size,
)
from .evaluator import apply_update, apply_update_to_root, evaluate_update
from .parser import UpdateParser, parse_update
from .pul import (
    Command,
    Del,
    Ins,
    Ren,
    Repl,
    UpdateError,
    apply_pul,
    check_pul,
)

__all__ = [
    "Delete",
    "Insert",
    "InsertPos",
    "Rename",
    "Replace",
    "UConcat",
    "UEmpty",
    "UFor",
    "UIf",
    "ULet",
    "Update",
    "update_free_variables",
    "update_size",
    "apply_update",
    "apply_update_to_root",
    "evaluate_update",
    "UpdateParser",
    "parse_update",
    "Command",
    "Del",
    "Ins",
    "Ren",
    "Repl",
    "UpdateError",
    "apply_pul",
    "check_pul",
]
