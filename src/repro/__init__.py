"""repro: type-based detection of XML query-update independence.

Full reproduction of Bidoit-Tollu, Colazzo & Ulliana, VLDB 2012.

Quickstart::

    from repro import DTD, analyze

    dtd = DTD.from_dict("doc", {"doc": "(a | b)*", "a": "c", "b": "c",
                                "c": "EMPTY"})
    report = analyze("//a//c", "delete //b//c", dtd)
    assert report.independent
"""

from .analysis import (
    AnalysisEngine,
    IndependenceReport,
    MatrixResult,
    analyze,
    baseline_analyze,
    baseline_is_independent,
    dynamic_independent,
    dynamic_independent_generated,
    engine_for,
    is_independent,
)
from .schema import DTD, EDTD, bib_dtd, paper_doc_dtd, xmark_dtd
from .xmldm import (
    Store,
    Tree,
    generate_document,
    parse_xml,
    serialize,
    validate,
)
from .xquery import ROOT_VAR, evaluate_query, parse_query
from .xupdate import apply_update, apply_update_to_root, parse_update

__version__ = "1.0.0"

__all__ = [
    "AnalysisEngine",
    "IndependenceReport",
    "MatrixResult",
    "engine_for",
    "analyze",
    "baseline_analyze",
    "baseline_is_independent",
    "dynamic_independent",
    "dynamic_independent_generated",
    "is_independent",
    "DTD",
    "EDTD",
    "bib_dtd",
    "paper_doc_dtd",
    "xmark_dtd",
    "Store",
    "Tree",
    "generate_document",
    "parse_xml",
    "serialize",
    "validate",
    "ROOT_VAR",
    "evaluate_query",
    "parse_query",
    "parse_update",
    "apply_update",
    "apply_update_to_root",
    "__version__",
]
