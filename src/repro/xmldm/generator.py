"""Seeded random generation of DTD-valid documents.

Substitute for the XMark ``xmlgen`` tool (see DESIGN.md section 5): the
experiments need d-valid documents of controlled size that exercise every
element type, not xmlgen's specific value distributions.

Generation samples a child word from each content model:

* ``Star``/``Plus`` repetitions are drawn geometrically with a
  size-dependent expected fan-out, so a byte budget can be approached;
* below a depth limit, or once the budget is exhausted, the generator
  switches to shortest-word expansion, which always terminates because
  every content model has a finite shortest word.

A coverage pass optionally grafts one instance of every reachable element
type so that even small documents contain every type (the paper's updates
"cover all different types of nodes in XMark documents").
"""

from __future__ import annotations

import random

from ..schema.dtd import DTD
from ..schema.regex import (
    TEXT_SYMBOL,
    Alt,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Seq,
    Star,
    Sym,
)
from .serialize import serialized_size
from .store import Location, Store, Tree

_WORDS = (
    "auction", "vintage", "gold", "silk", "amber", "quartz", "maple",
    "copper", "ivory", "linen", "cedar", "pearl", "slate", "bronze",
)


class DocumentGenerator:
    """Generates random valid documents for a DTD.

    Parameters
    ----------
    dtd:
        Target schema.
    seed:
        RNG seed; identical seeds reproduce identical documents.
    max_depth:
        Depth at which recursion is cut off via shortest-word expansion.
    fanout:
        Expected number of iterations for each ``*``/``+`` repetition while
        the byte budget is not exhausted.
    rng:
        An externally owned :class:`random.Random` to draw from instead
        of seeding a private one -- lets the testkit and Hypothesis
        drive document generation deterministically from their own
        stream without touching global RNG state.  ``seed`` is ignored
        when ``rng`` is given.
    """

    def __init__(self, dtd: DTD, seed: int = 0, max_depth: int = 24,
                 fanout: float = 2.0, rng: random.Random | None = None):
        self.dtd = dtd
        self.max_depth = max_depth
        self.fanout = fanout
        self._rng = rng if rng is not None else random.Random(seed)
        self._budget = 0

    def generate(self, target_bytes: int = 10_000,
                 ensure_coverage: bool = True) -> Tree:
        """Generate one valid document of roughly ``target_bytes`` size."""
        store = Store()
        root = self._element(store, self.dtd.start, 0, float(target_bytes))
        tree = Tree(store, root)
        if ensure_coverage:
            self._ensure_coverage(tree)
        return tree

    # -- sampling ----------------------------------------------------------

    def _element(self, store: Store, tag: str, depth: int,
                 budget: float) -> Location:
        """Generate one ``tag`` element within a byte ``budget``.

        The budget is split equally among the sampled children, so no
        schema branch starves the ones serialized after it.
        """
        frugal = depth >= self.max_depth or budget <= 16
        if frugal:
            word = self.dtd.shortest_content(tag)
        else:
            self._budget = int(budget)
            word = tuple(self._sample_word(self.dtd.content_model(tag)))
        children: list[Location] = []
        remaining = budget - (len(tag) * 2 + 5)
        share = remaining / len(word) if word else 0.0
        for symbol in word:
            if symbol == TEXT_SYMBOL:
                children.append(store.new_text(self._text()))
            else:
                children.append(
                    self._element(store, symbol, depth + 1, share)
                )
        loc = store.new_element(tag, children)
        return loc

    def _sample_word(self, model: Regex) -> list[str]:
        if isinstance(model, Epsilon):
            return []
        if isinstance(model, Sym):
            return [model.name]
        if isinstance(model, Seq):
            return self._sample_word(model.left) + self._sample_word(model.right)
        if isinstance(model, Alt):
            branch = model.left if self._rng.random() < 0.5 else model.right
            return self._sample_word(branch)
        if isinstance(model, Star):
            return self._repeat(model.inner, minimum=0)
        if isinstance(model, Plus):
            return self._repeat(model.inner, minimum=1)
        if isinstance(model, Opt):
            if self._rng.random() < 0.5:
                return self._sample_word(model.inner)
            return []
        raise TypeError(f"unknown regex node {model!r}")

    def _repeat(self, inner: Regex, minimum: int) -> list[str]:
        # Expected repetitions grow with the available byte budget so
        # large target sizes are actually reached (wide, XMark-like
        # documents rather than ever-deeper ones).
        expected = max(self.fanout, self._budget / 400.0)
        stop = 1.0 / (1.0 + expected)
        count = minimum
        while self._budget > 0 and self._rng.random() > stop:
            count += 1
            if count >= 500:
                break
        word: list[str] = []
        for _ in range(count):
            word.extend(self._sample_word(inner))
        return word

    def _text(self) -> str:
        length = self._rng.randint(1, 3)
        value = " ".join(self._rng.choice(_WORDS) for _ in range(length))
        self._budget -= len(value)
        return value

    # -- coverage ----------------------------------------------------------

    def _ensure_coverage(self, tree: Tree) -> None:
        """Graft minimal instances of missing element types where legal.

        For every reachable type absent from the document, find a present
        element whose content model mentions the type, and regenerate that
        element's children by sampling words until one containing the type
        appears (bounded attempts; falls back silently -- coverage is a
        best effort used to make small corpora exercise all updates).
        """
        store = tree.store
        present: set[str] = {
            store.tag(loc)
            for loc in store.descendants_or_self(tree.root)
            if store.is_element(loc)
        }
        reachable = {
            s for s in self.dtd.descendants_of(self.dtd.start)
            if s != TEXT_SYMBOL
        } | {self.dtd.start}
        missing = [s for s in sorted(reachable - present)]
        # Group missing symbols by chosen host so several grafts onto the
        # same element do not overwrite one another.
        by_host: dict[str, set[str]] = {}
        deferred: list[str] = []
        for symbol in missing:
            hosts = [
                tag for tag in sorted(present)
                if symbol in self.dtd.children_of(tag)
            ]
            if hosts:
                by_host.setdefault(hosts[0], set()).add(symbol)
            else:
                deferred.append(symbol)
        for host_tag, symbols in sorted(by_host.items()):
            present_now: set[str] = {
                store.tag(loc)
                for loc in store.descendants_or_self(tree.root)
                if store.is_element(loc)
            }
            wanted = symbols - present_now
            if not wanted:
                continue
            host_loc = next(
                (loc for loc in store.descendants_or_self(tree.root)
                 if store.is_element(loc) and store.tag(loc) == host_tag),
                None,
            )
            if host_loc is None:
                continue
            word = self._word_containing(host_tag, wanted)
            if word is None:
                continue
            children: list[Location] = []
            for child_symbol in word:
                if child_symbol == TEXT_SYMBOL:
                    children.append(store.new_text(self._text()))
                else:
                    # A modest budget so optional content below the graft
                    # (e.g. annotation/description under closed_auction)
                    # can materialize instead of collapsing to the
                    # shortest word.
                    children.append(
                        self._element(store, child_symbol,
                                      max(1, self.max_depth - 6), 600.0)
                    )
            store.replace_children(host_loc, children)

    def _word_containing(self, host: str, symbols: set[str]
                         ) -> tuple[str, ...] | None:
        """Sample a child word of ``host`` containing all of ``symbols``."""
        model = self.dtd.content_model(host)
        best: tuple[str, ...] | None = None
        best_hits = 0
        for _ in range(128):
            self._budget = 400  # keep star repetitions possible
            word = tuple(self._sample_word(model))
            hits = len(symbols & set(word))
            if hits == len(symbols):
                return word
            if hits > best_hits:
                best, best_hits = word, hits
        return best


def generate_document(dtd: DTD, target_bytes: int = 10_000, seed: int = 0,
                      ensure_coverage: bool = True,
                      rng: random.Random | None = None) -> Tree:
    """One-shot convenience wrapper around :class:`DocumentGenerator`."""
    return DocumentGenerator(dtd, seed=seed, rng=rng).generate(
        target_bytes, ensure_coverage=ensure_coverage
    )


def generate_corpus(dtd: DTD, count: int, target_bytes: int = 4_000,
                    seed: int = 0) -> list[Tree]:
    """A list of ``count`` documents with distinct seeds."""
    return [
        generate_document(dtd, target_bytes, seed=seed + i)
        for i in range(count)
    ]


def document_bytes(tree: Tree) -> int:
    """Compact serialized size of a document."""
    return serialized_size(tree.store, tree.root)
