"""A small XML parser producing :class:`~repro.xmldm.store.Tree` values.

Supports the fragment the paper's data model covers: elements, text,
comments (skipped), XML declarations / doctype lines (skipped) and
attributes (parsed but discarded, since the benchmark rewriting removes
attribute use).  Entities ``&amp; &lt; &gt; &quot; &apos;`` are decoded.
"""

from __future__ import annotations

from .store import Location, Store, Tree


class XMLParseError(ValueError):
    """Raised on malformed XML input."""


_ENTITIES = {
    "&amp;": "&",
    "&lt;": "<",
    "&gt;": ">",
    "&quot;": '"',
    "&apos;": "'",
}


def _decode_entities(text: str) -> str:
    if "&" not in text:
        return text
    for entity, char in _ENTITIES.items():
        text = text.replace(entity, char)
    return text


class _Parser:
    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._store = Store()

    def parse(self) -> Tree:
        self._skip_prolog()
        root = self._element()
        self._skip_misc()
        if self._pos != len(self._text):
            raise XMLParseError(
                f"trailing content at offset {self._pos}"
            )
        return Tree(self._store, root)

    # -- structure ---------------------------------------------------------

    def _element(self) -> Location:
        if not self._text.startswith("<", self._pos):
            raise XMLParseError(f"expected '<' at offset {self._pos}")
        tag_end = self._pos + 1
        while tag_end < len(self._text) and self._text[tag_end] not in " \t\r\n/>":
            tag_end += 1
        tag = self._text[self._pos + 1:tag_end]
        if not tag:
            raise XMLParseError(f"empty tag name at offset {self._pos}")
        self._pos = tag_end
        self._skip_attributes()
        if self._text.startswith("/>", self._pos):
            self._pos += 2
            return self._store.new_element(tag, [])
        if not self._text.startswith(">", self._pos):
            raise XMLParseError(f"malformed start tag at offset {self._pos}")
        self._pos += 1
        children: list[Location] = []
        while True:
            if self._text.startswith("</", self._pos):
                break
            if self._text.startswith("<!--", self._pos):
                self._skip_comment()
                continue
            if self._text.startswith("<", self._pos):
                children.append(self._element())
                continue
            children.append(self._text_node())
        close = f"</{tag}>"
        # Allow whitespace inside the closing tag: </tag  >.
        end = self._text.find(">", self._pos)
        if end < 0:
            raise XMLParseError("unterminated closing tag")
        actual = self._text[self._pos + 2:end].strip()
        if actual != tag:
            raise XMLParseError(
                f"mismatched closing tag {actual!r} for {tag!r} "
                f"(expected {close!r})"
            )
        self._pos = end + 1
        return self._store.new_element(tag, children)

    def _text_node(self) -> Location:
        start = self._pos
        while self._pos < len(self._text) and self._text[self._pos] != "<":
            self._pos += 1
        raw = self._text[start:self._pos]
        return self._store.new_text(_decode_entities(raw))

    # -- lexical noise -------------------------------------------------------

    def _skip_attributes(self) -> None:
        while True:
            while self._pos < len(self._text) and self._text[self._pos] in " \t\r\n":
                self._pos += 1
            ch = self._text[self._pos] if self._pos < len(self._text) else ""
            if ch in (">", "/") or not ch:
                return
            # attribute name
            while self._pos < len(self._text) and self._text[self._pos] not in "= \t\r\n>/":
                self._pos += 1
            while self._pos < len(self._text) and self._text[self._pos] in " \t\r\n":
                self._pos += 1
            if self._text.startswith("=", self._pos):
                self._pos += 1
                while self._pos < len(self._text) and self._text[self._pos] in " \t\r\n":
                    self._pos += 1
                quote = self._text[self._pos] if self._pos < len(self._text) else ""
                if quote not in ("'", '"'):
                    raise XMLParseError(
                        f"unquoted attribute value at offset {self._pos}"
                    )
                end = self._text.find(quote, self._pos + 1)
                if end < 0:
                    raise XMLParseError("unterminated attribute value")
                self._pos = end + 1

    def _skip_comment(self) -> None:
        end = self._text.find("-->", self._pos)
        if end < 0:
            raise XMLParseError("unterminated comment")
        self._pos = end + 3

    def _skip_prolog(self) -> None:
        self._skip_ws()
        while True:
            if self._text.startswith("<?", self._pos):
                end = self._text.find("?>", self._pos)
                if end < 0:
                    raise XMLParseError("unterminated processing instruction")
                self._pos = end + 2
            elif self._text.startswith("<!--", self._pos):
                self._skip_comment()
            elif self._text.startswith("<!DOCTYPE", self._pos):
                end = self._text.find(">", self._pos)
                if end < 0:
                    raise XMLParseError("unterminated DOCTYPE")
                self._pos = end + 1
            else:
                break
            self._skip_ws()

    def _skip_misc(self) -> None:
        self._skip_ws()
        while self._text.startswith("<!--", self._pos):
            self._skip_comment()
            self._skip_ws()

    def _skip_ws(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos] in " \t\r\n":
            self._pos += 1


def parse_xml(text: str, strip_whitespace: bool = True) -> Tree:
    """Parse an XML document into a :class:`Tree`.

    With ``strip_whitespace`` (the default), whitespace-only text nodes are
    dropped -- they are formatting noise w.r.t. DTD validation.
    """
    tree = _Parser(text).parse()
    if strip_whitespace:
        _strip_whitespace(tree)
    return tree


def _strip_whitespace(tree: Tree) -> None:
    store = tree.store
    for loc in list(store.descendants_or_self(tree.root)):
        if not store.is_element(loc):
            continue
        kids = store.children(loc)
        kept = [
            k for k in kids
            if store.is_element(k) or store.text(k).strip() != ""
        ]
        if len(kept) != len(kids):
            store.replace_children(loc, kept)
