"""XML data-model substrate: stores, trees, parsing, generation."""

from .generator import (
    DocumentGenerator,
    document_bytes,
    generate_corpus,
    generate_document,
)
from .parse import XMLParseError, parse_xml
from .projection import (
    ChainKeep,
    KeepDecision,
    keep_set_for_chains,
    project,
    typed_locations,
    upward_closure,
)
from .serialize import serialize, serialized_size
from .store import (
    ElementNode,
    Location,
    Node,
    Store,
    StoreError,
    TextNode,
    Tree,
    sequences_equivalent,
    value_equivalent,
)
from .validate import ValidationError, is_valid, is_valid_edtd, typing, validate

__all__ = [
    "DocumentGenerator",
    "document_bytes",
    "generate_corpus",
    "generate_document",
    "XMLParseError",
    "parse_xml",
    "ChainKeep",
    "KeepDecision",
    "keep_set_for_chains",
    "project",
    "typed_locations",
    "upward_closure",
    "serialize",
    "serialized_size",
    "ElementNode",
    "Location",
    "Node",
    "Store",
    "StoreError",
    "TextNode",
    "Tree",
    "sequences_equivalent",
    "value_equivalent",
    "ValidationError",
    "is_valid",
    "is_valid_edtd",
    "typing",
    "validate",
]
