"""XML projection ``t|L`` (Section 3.4, after Marian & Simeon [16]).

A projection keeps a subset of locations that is upward-closed w.r.t. the
parent relation, discarding every other subtree.  The soundness theorems
of the paper are phrased in terms of projections; the test suite uses this
module to check Theorem 3.2 empirically (projecting a document onto the
chains inferred for a query preserves the query answer).
"""

from __future__ import annotations

from .store import ElementNode, Location, Store, TextNode, Tree


def upward_closure(store: Store, locations: set[Location]) -> set[Location]:
    """Close a location set under the parent relation."""
    closed = set(locations)
    for loc in locations:
        parent = store.parent(loc)
        while parent is not None and parent not in closed:
            closed.add(parent)
            parent = store.parent(parent)
    return closed


def project(tree: Tree, keep: set[Location]) -> Tree:
    """``t|L``: the projection of ``tree`` onto ``keep``.

    ``keep`` is closed upward automatically and must contain (or imply)
    the root.  Child order of retained locations is preserved.  The result
    shares no mutable state with the input.
    """
    store = tree.store
    closed = upward_closure(store, set(keep) | {tree.root})
    projected = Store()
    mapping: dict[Location, Location] = {}

    def build(loc: Location) -> Location:
        node = store.node(loc)
        if isinstance(node, TextNode):
            new = projected.new_text(node.text)
        else:
            assert isinstance(node, ElementNode)
            kids = [build(child) for child in node.children if child in closed]
            new = projected.new_element(node.tag, kids)
        mapping[loc] = new
        return new

    root = build(tree.root)
    return Tree(projected, root)


def typed_locations(
    tree: Tree, chains: set[tuple[str, ...]], include_descendants: bool = False
) -> set[Location]:
    """Locations of ``tree`` whose node chain is in ``chains``.

    With ``include_descendants`` the paper's ``L^t_tau`` is computed:
    locations whose chain has a *prefix* in ``chains`` (i.e. descendants of
    typed nodes are kept too, matching the definition
    ``L^t_tau = { l | c^sigma_l . c in tau }``... note the paper's
    definition keeps ``l`` whenever some *extension* of ``c^sigma_l`` is in
    tau; for projection purposes the useful direction is keeping nodes
    whose chain extends a chain of tau, which is what this flag does).
    """
    store = tree.store
    result: set[Location] = set()
    for loc in store.descendants_or_self(tree.root):
        node_chain = store.node_chain(loc)
        if node_chain in chains:
            result.add(loc)
        elif include_descendants and any(
            node_chain[:n] in chains for n in range(1, len(node_chain))
        ):
            result.add(loc)
    return result
