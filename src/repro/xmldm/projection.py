"""XML projection ``t|L`` (Section 3.4, after Marian & Simeon [16]).

A projection keeps a subset of locations that is upward-closed w.r.t. the
parent relation, discarding every other subtree.  The soundness theorems
of the paper are phrased in terms of projections; the test suite uses this
module to check Theorem 3.2 empirically (projecting a document onto the
chains inferred for a query preserves the query answer).

Two faces of the same keep set:

* :func:`keep_set_for_chains` materializes the keep set for an already
  parsed tree (used by :func:`repro.analysis.project.project_for_query`);
* :class:`ChainKeep` is the chain-level decision shared with the
  streaming projected loader
  (:func:`repro.docstore.streamload.load_xml`), which never materializes
  the full tree.  Both paths agree by construction -- the empirical
  Theorem 3.2 property test pins the equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import cached_property

from .store import ElementNode, Location, Store, TextNode, Tree

Chain = tuple[str, ...]


class KeepDecision(Enum):
    """What a :class:`ChainKeep` says about one label chain."""

    #: Keep the node and its whole subtree (a return-chain hit: a
    #: returned node embodies its descendants, Section 3).
    SUBTREE = "subtree"
    #: Keep the node itself; descendants still need examination.
    NODE = "node"
    #: The node is not kept, but some kept chain extends its chain, so
    #: its subtree must still be explored (it may be a needed ancestor).
    EXPLORE = "explore"
    #: No kept chain extends this chain: the whole subtree is dead.
    SKIP = "skip"


@dataclass(frozen=True)
class ChainKeep:
    """A projection specification at the chain level.

    ``subtree_chains`` keep a matching node *and its whole subtree*
    (the query's return chains); ``node_chains`` keep just the matching
    node (the used chains -- ancestors are added by upward closure).
    The decision :meth:`decide` is O(1) per chain thanks to the
    precomputed proper-prefix index.

    >>> keep = ChainKeep.from_chains({("doc", "a")}, {("doc", "b")})
    >>> keep.decide(("doc",)).value
    'explore'
    >>> keep.decide(("doc", "a")).value
    'subtree'
    >>> keep.decide(("doc", "b")).value
    'node'
    >>> keep.decide(("doc", "c")).value
    'skip'
    """

    subtree_chains: frozenset[Chain]
    node_chains: frozenset[Chain]
    #: Every proper prefix of every kept chain (ancestor viability).
    prefixes: frozenset[Chain] = field(default_factory=frozenset)
    #: Chain length at which the producing analysis was *truncated*
    #: (a k-chain universe's depth cap), or None for exact chain sets.
    #: A viable path reaching this length keeps its whole subtree: the
    #: analysis cannot see below the cap, so no pruning decision there
    #: is trustworthy (recursive schemas admit arbitrarily deep valid
    #: documents).
    truncation: int | None = None
    #: Schema reach per symbol: how many levels a valid path can still
    #: extend below the symbol, saturated at ``truncation`` (recursion
    #: makes the true value unbounded).  Consulted only when
    #: ``truncation`` is set: viability toward the cap must come from
    #: the *schema*, not from the inferred chains -- a recursion-deep
    #: path may have all of its completions past the cap, where the
    #: capped analysis inferred nothing at all.
    reach: tuple[tuple[str, int], ...] = ()

    @classmethod
    def from_chains(
        cls,
        subtree_chains: "frozenset[Chain] | set[Chain]",
        node_chains: "frozenset[Chain] | set[Chain]" = frozenset(),
        truncation: int | None = None,
        reach: "tuple[tuple[str, int], ...]" = (),
    ) -> "ChainKeep":
        """Build a spec, precomputing the proper-prefix index."""
        subtree = frozenset(subtree_chains)
        node = frozenset(node_chains)
        prefixes = frozenset(
            chain[:length]
            for chain in subtree | node
            for length in range(1, len(chain))
        )
        return cls(subtree, node, prefixes, truncation, reach)

    def union(self, other: "ChainKeep") -> "ChainKeep":
        """The spec keeping what either operand keeps."""
        truncations = [t for t in (self.truncation, other.truncation)
                       if t is not None]
        merged: dict[str, int] = dict(self.reach)
        for symbol, depth in other.reach:
            merged[symbol] = max(depth, merged.get(symbol, 0))
        return ChainKeep.from_chains(
            self.subtree_chains | other.subtree_chains,
            self.node_chains | other.node_chains,
            truncation=min(truncations) if truncations else None,
            reach=tuple(sorted(merged.items())),
        )

    @cached_property
    def _reach_map(self) -> "dict[str, int]":
        return dict(self.reach)

    def decide(self, chain: Chain) -> KeepDecision:
        """Classify one label chain (no inherited context).

        Callers walk a tree top-down, treat ``SUBTREE`` as covering
        everything below, and stop descending at ``SKIP``.  The capped
        analysis saw every chain of length up to ``truncation`` -- its
        blind spot is strictly *beyond* the cap.  So with a ``reach``
        table, a chain the schema can extend past the cap is explored
        even when no inferred chain extends it (its completions may all
        lie in the blind spot), and a chain *at* the cap keeps its
        whole subtree exactly when the schema puts anything below it.
        On a non-recursive schema no chain outgrows the cap, so both
        guards stay silent and the inferred chains decide alone.
        Without a ``reach`` table (hand-built specs) the pre-cap guard
        degrades to keeping every subtree at the cap.
        """
        if self.truncation is not None and len(chain) >= self.truncation:
            if not self.reach or self._reach_map.get(chain[-1], 0) >= 1:
                return KeepDecision.SUBTREE
            # A leaf chain at the cap: the analysis saw it in full,
            # so the inferred chain sets below are authoritative.
        if chain in self.subtree_chains:
            return KeepDecision.SUBTREE
        if chain in self.node_chains:
            return KeepDecision.NODE
        if chain in self.prefixes:
            return KeepDecision.EXPLORE
        if self.truncation is not None and self.reach and \
                self._reach_map.get(chain[-1], 0) >= \
                self.truncation - len(chain) + 1:
            return KeepDecision.EXPLORE
        return KeepDecision.SKIP


def keep_set_for_chains(tree: Tree, keep: ChainKeep) -> set[Location]:
    """The upward-closed keep set of ``keep`` on a materialized tree.

    The single implementation behind both the classic
    ``project(parse(doc), keep)`` path and (at the chain level) the
    streaming pushdown loader: a location is kept iff its chain hits a
    subtree chain (then with all descendants), hits a node chain, or is
    an ancestor of such a location.
    """
    store = tree.store
    kept: set[Location] = set()
    # DFS carrying the label chain incrementally (node_chain() per node
    # would be quadratic in depth).
    stack: list[tuple[Location, Chain]] = [
        (tree.root, (store.typ(tree.root),))
    ]
    while stack:
        loc, chain = stack.pop()
        decision = keep.decide(chain)
        if decision is KeepDecision.SUBTREE:
            kept.add(loc)
            kept.update(store.descendants(loc))
            continue
        if decision is KeepDecision.NODE:
            kept.add(loc)
        elif decision is KeepDecision.SKIP:
            continue
        for child in store.children(loc):
            stack.append((child, chain + (store.typ(child),)))
    return upward_closure(store, kept | {tree.root})


def upward_closure(store: Store, locations: set[Location]) -> set[Location]:
    """Close a location set under the parent relation."""
    closed = set(locations)
    for loc in locations:
        parent = store.parent(loc)
        while parent is not None and parent not in closed:
            closed.add(parent)
            parent = store.parent(parent)
    return closed


def project(tree: Tree, keep: set[Location]) -> Tree:
    """``t|L``: the projection of ``tree`` onto ``keep``.

    ``keep`` is closed upward automatically and must contain (or imply)
    the root.  Child order of retained locations is preserved.  The result
    shares no mutable state with the input.
    """
    store = tree.store
    closed = upward_closure(store, set(keep) | {tree.root})
    projected = Store()
    mapping: dict[Location, Location] = {}

    def build(loc: Location) -> Location:
        node = store.node(loc)
        if isinstance(node, TextNode):
            new = projected.new_text(node.text)
        else:
            assert isinstance(node, ElementNode)
            kids = [build(child) for child in node.children if child in closed]
            new = projected.new_element(node.tag, kids)
        mapping[loc] = new
        return new

    root = build(tree.root)
    return Tree(projected, root)


def typed_locations(
    tree: Tree, chains: set[tuple[str, ...]], include_descendants: bool = False
) -> set[Location]:
    """Locations of ``tree`` whose node chain is in ``chains``.

    With ``include_descendants`` the paper's ``L^t_tau`` is computed:
    locations whose chain has a *prefix* in ``chains`` (i.e. descendants of
    typed nodes are kept too, matching the definition
    ``L^t_tau = { l | c^sigma_l . c in tau }``... note the paper's
    definition keeps ``l`` whenever some *extension* of ``c^sigma_l`` is in
    tau; for projection purposes the useful direction is keeping nodes
    whose chain extends a chain of tau, which is what this flag does).
    """
    store = tree.store
    result: set[Location] = set()
    for loc in store.descendants_or_self(tree.root):
        node_chain = store.node_chain(loc)
        if node_chain in chains:
            result.add(loc)
        elif include_descendants and any(
            node_chain[:n] in chains for n in range(1, len(node_chain))
        ):
            result.add(loc)
    return result
