"""DTD validation of store trees (Section 2's validity mapping ``nu``)."""

from __future__ import annotations

from ..schema.dtd import DTD
from ..schema.edtd import EDTD
from ..schema.regex import TEXT_SYMBOL
from .store import Location, Tree


class ValidationError(ValueError):
    """Carries the first offending location and a human-readable reason."""

    def __init__(self, loc: Location, reason: str):
        super().__init__(f"location {loc}: {reason}")
        self.loc = loc
        self.reason = reason


def validate(tree: Tree, dtd: DTD) -> None:
    """Raise :class:`ValidationError` unless ``tree`` is valid w.r.t. ``dtd``.

    Validity (Section 2): the root carries the start symbol, and for each
    element node the tag word of its children matches the content model.
    """
    store = tree.store
    if not store.is_element(tree.root):
        raise ValidationError(tree.root, "root is a text node")
    if store.tag(tree.root) != dtd.start:
        raise ValidationError(
            tree.root,
            f"root tag {store.tag(tree.root)!r} is not the start symbol "
            f"{dtd.start!r}",
        )
    for loc in store.descendants_or_self(tree.root):
        if not store.is_element(loc):
            continue
        tag = store.tag(loc)
        if tag not in dtd.alphabet:
            raise ValidationError(loc, f"unknown element {tag!r}")
        word = [store.typ(child) for child in store.children(loc)]
        if not dtd.accepts_children(tag, word):
            raise ValidationError(
                loc,
                f"children {word!r} do not match content model of {tag!r}",
            )


def is_valid(tree: Tree, dtd: DTD) -> bool:
    """Boolean form of :func:`validate`."""
    try:
        validate(tree, dtd)
    except ValidationError:
        return False
    return True


def typing(tree: Tree, schema: EDTD) -> dict[Location, str] | None:
    """EDTD validity: find a type assignment ``nu`` or return None.

    Types are assigned top-down; at each element we must pick, for every
    child, a type with the child's label such that the type word matches
    the parent type's content model.  Content models in our catalog are
    deterministic enough that a greedy left-to-right assignment with
    backtracking over per-child type candidates suffices; the search is
    bounded by the (small) number of types per label.
    """
    store = tree.store
    if not store.is_element(tree.root):
        return None
    if schema.label_of(schema.start) != store.tag(tree.root):
        return None
    assignment: dict[Location, str] = {tree.root: schema.start}
    stack = [tree.root]
    while stack:
        loc = stack.pop()
        parent_type = assignment[loc]
        kids = store.children(loc)
        labels = [store.typ(k) for k in kids]
        choice = _assign_child_types(schema, parent_type, labels)
        if choice is None:
            return None
        for kid, kid_type in zip(kids, choice):
            assignment[kid] = kid_type
            if store.is_element(kid):
                stack.append(kid)
    return assignment


def _assign_child_types(
    schema: EDTD, parent_type: str, labels: list[str]
) -> list[str] | None:
    """Pick a type word with the given labels accepted by the parent model."""
    candidates: list[list[str]] = []
    allowed = schema.children_of(parent_type)
    for label in labels:
        if label == TEXT_SYMBOL:
            options = [TEXT_SYMBOL] if TEXT_SYMBOL in allowed else []
        else:
            options = sorted(schema.types_with_label(label) & allowed)
        if not options:
            return None
        candidates.append(options)

    automaton = schema.core.automaton(parent_type)

    def search(prefix: list[str], index: int) -> list[str] | None:
        if index == len(candidates):
            return list(prefix) if automaton.matches(prefix) else None
        for option in candidates[index]:
            prefix.append(option)
            found = search(prefix, index + 1)
            if found is not None:
                return found
            prefix.pop()
        return None

    return search([], 0)


def is_valid_edtd(tree: Tree, schema: EDTD) -> bool:
    """Boolean EDTD validity."""
    return typing(tree, schema) is not None
