"""Serialization of store trees back to XML text."""

from __future__ import annotations

from io import StringIO

from .store import ElementNode, Location, Store, TextNode


def _encode(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def serialize(store: Store, loc: Location, indent: int | None = None) -> str:
    """Serialize the subtree rooted at ``loc``.

    ``indent``: number of spaces per nesting level, or None for compact
    single-line output.
    """
    out = StringIO()
    _write(store, loc, out, indent, 0)
    return out.getvalue()


def _write(store: Store, loc: Location, out: StringIO,
           indent: int | None, level: int) -> None:
    pad = "" if indent is None else " " * (indent * level)
    newline = "" if indent is None else "\n"
    node = store.node(loc)
    if isinstance(node, TextNode):
        out.write(f"{pad}{_encode(node.text)}{newline}")
        return
    assert isinstance(node, ElementNode)
    if not node.children:
        out.write(f"{pad}<{node.tag}/>{newline}")
        return
    out.write(f"{pad}<{node.tag}>{newline}")
    for child in node.children:
        _write(store, child, out, indent, level + 1)
    out.write(f"{pad}</{node.tag}>{newline}")


def serialized_size(store: Store, loc: Location) -> int:
    """Byte size of the compact serialization (used for document scaling)."""
    total = 0
    for node_loc in store.descendants_or_self(loc):
        node = store.node(node_loc)
        if isinstance(node, TextNode):
            total += len(node.text)
        else:
            # <tag> ... </tag> or <tag/>
            if node.children:
                total += 2 * len(node.tag) + 5
            else:
                total += len(node.tag) + 3
    return total
