"""The XML store data model of Section 2.

A *store* sigma maps each location (an integer identifier) to either an
element node ``a[L]`` (tag plus ordered child locations) or a text node
``s``.  A *tree* is a pair ``(sigma, root_location)``.  This mirrors the
paper's formalization exactly, including:

* ``typ(l)`` and the node chain ``c^sigma_l`` (Definition 2.2);
* value equivalence ``(sigma, l) ~= (sigma', l')`` (tree isomorphism);
* subtree restriction ``sigma @ l``.

Stores are mutable (updates rewrite them in place) but support cheap
copying for the dynamic independence tests.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from ..schema.regex import TEXT_SYMBOL

Location = int


class StoreError(ValueError):
    """Raised on malformed store operations (unknown locations etc.)."""


@dataclass
class ElementNode:
    """An element node ``a[L]``: tag and ordered child locations."""

    tag: str
    children: list[Location]

    __slots__ = ("tag", "children")


@dataclass
class TextNode:
    """A text node carrying a string value."""

    text: str

    __slots__ = ("text",)


Node = ElementNode | TextNode


class Store:
    """A store sigma: an environment of locations to nodes.

    Locations are allocated monotonically; parent pointers are maintained
    incrementally so upward axes run in O(1) per step.
    """

    def __init__(self) -> None:
        self._nodes: dict[Location, Node] = {}
        self._parent: dict[Location, Location] = {}
        self._next: Location = 0

    # -- allocation ----------------------------------------------------------

    def new_element(self, tag: str, children: list[Location] | None = None
                    ) -> Location:
        """Allocate an element node; children must already be in the store."""
        loc = self._next
        self._next += 1
        kids = list(children) if children else []
        self._nodes[loc] = ElementNode(tag, kids)
        for child in kids:
            self._parent[child] = loc
        return loc

    def new_text(self, text: str) -> Location:
        """Allocate a text node."""
        loc = self._next
        self._next += 1
        self._nodes[loc] = TextNode(text)
        return loc

    # -- accessors -------------------------------------------------------

    def node(self, loc: Location) -> Node:
        """The node at ``loc``."""
        try:
            return self._nodes[loc]
        except KeyError:
            raise StoreError(f"unknown location {loc}") from None

    def __contains__(self, loc: Location) -> bool:
        return loc in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def locations(self) -> Iterator[Location]:
        """All locations in the store (``dom(sigma)``), arbitrary order."""
        return iter(self._nodes)

    def typ(self, loc: Location) -> str:
        """``typ(l)``: the tag, or the text symbol for text nodes."""
        node = self.node(loc)
        return node.tag if isinstance(node, ElementNode) else TEXT_SYMBOL

    def is_element(self, loc: Location) -> bool:
        return isinstance(self.node(loc), ElementNode)

    def is_text(self, loc: Location) -> bool:
        return isinstance(self.node(loc), TextNode)

    def tag(self, loc: Location) -> str:
        """Tag of an element node (raises for text nodes)."""
        node = self.node(loc)
        if not isinstance(node, ElementNode):
            raise StoreError(f"location {loc} is a text node")
        return node.tag

    def text(self, loc: Location) -> str:
        """String value of a text node (raises for elements)."""
        node = self.node(loc)
        if not isinstance(node, TextNode):
            raise StoreError(f"location {loc} is an element node")
        return node.text

    def children(self, loc: Location) -> list[Location]:
        """Ordered child locations (empty for text nodes)."""
        node = self.node(loc)
        return list(node.children) if isinstance(node, ElementNode) else []

    def parent(self, loc: Location) -> Location | None:
        """Parent location, or None for roots / detached nodes."""
        return self._parent.get(loc)

    def node_chain(self, loc: Location) -> tuple[str, ...]:
        """The chain ``c^sigma_l`` of Definition 2.2 (root-most first)."""
        parts: list[str] = []
        current: Location | None = loc
        while current is not None:
            parts.append(self.typ(current))
            current = self._parent.get(current)
        parts.reverse()
        return tuple(parts)

    def depth(self, loc: Location) -> int:
        """Number of ancestors of ``loc``."""
        count = 0
        current = self._parent.get(loc)
        while current is not None:
            count += 1
            current = self._parent.get(current)
        return count

    # -- traversal -------------------------------------------------------

    def descendants(self, loc: Location) -> Iterator[Location]:
        """Strict descendants of ``loc`` in document order."""
        stack = list(reversed(self.children(loc)))
        while stack:
            current = stack.pop()
            yield current
            stack.extend(reversed(self.children(current)))

    def descendants_or_self(self, loc: Location) -> Iterator[Location]:
        """``loc`` followed by its descendants in document order."""
        yield loc
        yield from self.descendants(loc)

    def ancestors(self, loc: Location) -> Iterator[Location]:
        """Strict ancestors, nearest first."""
        current = self._parent.get(loc)
        while current is not None:
            yield current
            current = self._parent.get(current)

    def siblings_after(self, loc: Location) -> list[Location]:
        """Following siblings in document order."""
        parent = self._parent.get(loc)
        if parent is None:
            return []
        kids = self.node(parent).children  # type: ignore[union-attr]
        index = kids.index(loc)
        return list(kids[index + 1:])

    def siblings_before(self, loc: Location) -> list[Location]:
        """Preceding siblings in document order."""
        parent = self._parent.get(loc)
        if parent is None:
            return []
        kids = self.node(parent).children  # type: ignore[union-attr]
        index = kids.index(loc)
        return list(kids[:index])

    # -- mutation (used by update application) -------------------------------

    def replace_children(self, loc: Location, children: list[Location]) -> None:
        """Overwrite the child list of an element node."""
        node = self.node(loc)
        if not isinstance(node, ElementNode):
            raise StoreError(f"location {loc} is a text node")
        for old in node.children:
            if self._parent.get(old) == loc:
                del self._parent[old]
        node.children = list(children)
        for child in node.children:
            self._parent[child] = loc

    def rename(self, loc: Location, tag: str) -> None:
        """Rename an element node."""
        node = self.node(loc)
        if not isinstance(node, ElementNode):
            raise StoreError(f"cannot rename text node {loc}")
        node.tag = tag

    def detach(self, loc: Location) -> None:
        """Remove ``loc`` from its parent's child list (node stays stored)."""
        parent = self._parent.get(loc)
        if parent is None:
            return
        node = self.node(parent)
        assert isinstance(node, ElementNode)
        node.children.remove(loc)
        del self._parent[loc]

    # -- copying ---------------------------------------------------------

    def copy_subtree(self, source: "Store", loc: Location) -> Location:
        """Deep-copy ``source @ loc`` into this store; returns the new root.

        Fresh locations are allocated (copies are value-equivalent, never
        location-equal), matching the W3C copy semantics of element
        construction and insertion.
        """
        node = source.node(loc)
        if isinstance(node, TextNode):
            return self.new_text(node.text)
        copied = [self.copy_subtree(source, child) for child in node.children]
        return self.new_element(node.tag, copied)

    def clone(self) -> "Store":
        """An independent deep copy of the whole store (same locations)."""
        other = Store()
        other._next = self._next
        other._parent = dict(self._parent)
        for loc, node in self._nodes.items():
            if isinstance(node, ElementNode):
                other._nodes[loc] = ElementNode(node.tag, list(node.children))
            else:
                other._nodes[loc] = TextNode(node.text)
        return other

    def restrict_to(self, root: Location) -> "Store":
        """``sigma @ root``: keep only locations connected to ``root``."""
        keep = set(self.descendants_or_self(root))
        other = Store()
        other._next = self._next
        for loc in keep:
            node = self._nodes[loc]
            if isinstance(node, ElementNode):
                other._nodes[loc] = ElementNode(node.tag, list(node.children))
            else:
                other._nodes[loc] = TextNode(node.text)
        other._parent = {
            loc: parent
            for loc, parent in self._parent.items()
            if loc in keep and parent in keep
        }
        return other


@dataclass
class Tree:
    """A tree ``t = (sigma, root)``."""

    store: Store
    root: Location

    __slots__ = ("store", "root")

    def size(self) -> int:
        """Number of nodes connected to the root."""
        return sum(1 for _ in self.store.descendants_or_self(self.root))

    def clone(self) -> "Tree":
        return Tree(self.store.clone(), self.root)


def value_equivalent(s1: Store, l1: Location, s2: Store, l2: Location) -> bool:
    """``(sigma1, l1) ~= (sigma2, l2)``: subtree isomorphism.

    Iterative pairwise comparison; locations are irrelevant, only tags,
    text values and child order matter.
    """
    stack = [(l1, l2)]
    while stack:
        a, b = stack.pop()
        na, nb = s1.node(a), s2.node(b)
        if isinstance(na, TextNode):
            if not isinstance(nb, TextNode) or na.text != nb.text:
                return False
            continue
        if not isinstance(nb, ElementNode):
            return False
        if na.tag != nb.tag or len(na.children) != len(nb.children):
            return False
        stack.extend(zip(na.children, nb.children))
    return True


def sequences_equivalent(
    s1: Store, locs1: list[Location], s2: Store, locs2: list[Location]
) -> bool:
    """``(sigma1, L1) ~= (sigma2, L2)`` pointwise (Section 2)."""
    if len(locs1) != len(locs2):
        return False
    return all(
        value_equivalent(s1, a, s2, b) for a, b in zip(locs1, locs2)
    )
