"""Quickstart: detect XML query-update independence with chain inference.

Reproduces the paper's two motivating examples (Section 1):

* q1 = //a//c  vs  u1 = delete //b//c   over {doc <- (a|b)*, a <- c, b <- c}
* q2 = //title vs  u2 = insert <author/> into every book (bib DTD)

Both pairs are independent; the chain analysis proves it, the type-based
baseline [6] cannot.

Run:  python examples/quickstart.py
"""

from repro import (
    DTD,
    ROOT_VAR,
    analyze,
    apply_update_to_root,
    baseline_analyze,
    bib_dtd,
    evaluate_query,
    parse_query,
    parse_update,
    parse_xml,
    serialize,
)
from repro.analysis.independence import chains_of


def example_q1_u1() -> None:
    print("=" * 64)
    print("Example 1: q1 = //a//c   vs   u1 = delete //b//c")
    dtd = DTD.from_dict(
        "doc", {"doc": "(a | b)*", "a": "c", "b": "c", "c": "EMPTY"}
    )

    report = analyze("//a//c", "delete //b//c", dtd)
    print(f"  chain analysis : {report}")
    print(f"  query returns  : {sorted(chains_of(report.query_chains.returns))}")
    print(f"  update chains  : {sorted(chains_of(report.update_chains))}")

    baseline = baseline_analyze("//a//c", "delete //b//c", dtd)
    print(f"  type baseline  : "
          f"{'independent' if baseline.independent else 'dependent'} "
          f"(overlap on {sorted(baseline.overlap)})")

    # Confirm dynamically on the Figure 1 document.
    tree = parse_xml("<doc><a><c/></a><a><c/></a><b><c/></b><a><c/></a></doc>")
    query = parse_query("//a//c")
    before = evaluate_query(query, tree.store, {ROOT_VAR: [tree.root]})
    apply_update_to_root(parse_update("delete //b//c"), tree.store,
                         tree.root)
    after = evaluate_query(query, tree.store, {ROOT_VAR: [tree.root]})
    print(f"  dynamic check  : |q(t)| = {len(before)} before, "
          f"{len(after)} after the update (unchanged)")


def example_q2_u2() -> None:
    print("=" * 64)
    print("Example 2: q2 = //title  vs  u2 = insert <author/> into books")
    dtd = bib_dtd()
    u2 = "for $x in //book return insert <author/> into $x"

    report = analyze("//title", u2, dtd)
    print(f"  chain analysis : {report}")
    print(f"  update chains  : {sorted(chains_of(report.update_chains))}")

    baseline = baseline_analyze("//title", u2, dtd)
    print(f"  type baseline  : "
          f"{'independent' if baseline.independent else 'dependent'} "
          f"(overlap on {sorted(baseline.overlap)})")

    tree = parse_xml(
        "<bib><book><title>Il nome della rosa</title>"
        "<author><last>Eco</last><first>Umberto</first></author>"
        "<publisher>Bompiani</publisher><price>12</price></book></bib>"
    )
    apply_update_to_root(parse_update(u2), tree.store, tree.root)
    print("  updated doc    :", serialize(tree.store, tree.root)[:90], "...")


def example_dependent_pair() -> None:
    print("=" * 64)
    print("Example 3: a genuinely dependent pair, with a witness chain")
    dtd = bib_dtd()
    report = analyze("//author", "delete //author/last", dtd)
    print(f"  chain analysis : {report}")
    for conflict in report.conflicts[:3]:
        print(f"  conflict       : {conflict}")


if __name__ == "__main__":
    example_q1_u1()
    example_q2_u2()
    example_dependent_pair()
