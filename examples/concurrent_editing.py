"""Isolation scheduling for a mixed workload (the paper's motivation ii).

A mixed stream of reporting queries and editing updates over the auction
schema is partitioned into *waves*: operations inside one wave are
pairwise independent (proved statically), so they can run concurrently
without a query ever observing a torn update.

Run:  python examples/concurrent_editing.py
"""

from repro.schema import xmark_dtd
from repro.viewmaint import IsolationScheduler


def main() -> None:
    scheduler = IsolationScheduler(xmark_dtd())

    scheduler.add_query("Q-people", "/site/people/person/name")
    scheduler.add_query("Q-prices",
                        "/site/closed_auctions/closed_auction/price")
    scheduler.add_update(
        "U-bid",
        "for $x in /site/open_auctions/open_auction return insert "
        "<bidder><date>d</date><time>t</time><personref/>"
        "<increase>2</increase></bidder> into $x",
    )
    scheduler.add_query("Q-bids",
                        "/site/open_auctions/open_auction/bidder/increase")
    scheduler.add_update(
        "U-price",
        "for $x in /site/closed_auctions/closed_auction/price return "
        "replace $x with <price>1</price>",
    )
    scheduler.add_query("Q-keywords", "//description//keyword")

    waves = scheduler.schedule()
    print("conflict-free execution waves:")
    for index, wave in enumerate(waves, start=1):
        print(f"  wave {index}: {wave}")

    print()
    print("Q-people runs alongside both updates (provably untouched);")
    print("Q-bids must wait for U-bid, Q-prices conflicts with U-price.")


if __name__ == "__main__":
    main()
