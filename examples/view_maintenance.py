"""View maintenance over an auction site (the paper's motivation i).

Materializes a dashboard of views over an XMark-style auction document
and plays an update stream through :class:`repro.viewmaint.ViewCache`.
The chain analysis proves most (view, update) pairs independent, so most
refreshes are skipped -- the effect Figure 3.c quantifies.

Run:  python examples/view_maintenance.py
"""

from repro.bench.xmark_data import rich_xmark_document
from repro.schema import xmark_dtd
from repro.viewmaint import ViewCache

DASHBOARD = {
    "person-names": "/site/people/person/name",
    "open-initials": "/site/open_auctions/open_auction/initial",
    "closed-prices": "/site/closed_auctions/closed_auction/price",
    "items-everywhere": "/site/regions//item/name",
    "hot-keywords": "//description//keyword",
}

UPDATE_STREAM = [
    ("new bidder",
     "for $x in /site/open_auctions/open_auction return insert "
     "<bidder><date>d</date><time>t</time><personref/>"
     "<increase>1</increase></bidder> into $x"),
    ("price correction",
     "for $x in /site/closed_auctions/closed_auction/price return "
     "replace $x with <price>99</price>"),
    ("mark emphasis bold",
     "for $x in //text/emph return rename $x as bold"),
    ("drop private data",
     "delete /site/people/person/creditcard"),
    ("new interest",
     "for $x in /site/people/person/profile return "
     "insert <interest/> as first into $x"),
]


def main() -> None:
    schema = xmark_dtd()
    tree = rich_xmark_document()
    cache = ViewCache(schema, tree)
    for name, query in DASHBOARD.items():
        cache.register(name, query)
        print(f"registered view {name:18s} -> "
              f"{len(cache.result(name))} nodes")

    print()
    for label, update in UPDATE_STREAM:
        refreshed = cache.apply(update)
        skipped = sorted(set(DASHBOARD) - set(refreshed))
        print(f"update [{label}]")
        print(f"  refreshed: {sorted(refreshed) or '(none)'}")
        print(f"  skipped  : {skipped or '(none)'}")

    stats = cache.stats
    print()
    print(f"refreshes done/skipped: {stats.refreshes_done}/"
          f"{stats.refreshes_skipped}  "
          f"(skip ratio {stats.skip_ratio:.0%})")
    print(f"static analysis time  : {stats.analysis_seconds * 1e3:.1f} ms")
    print(f"view refresh time     : {stats.refresh_seconds * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
