"""Explore what the analysis infers: chains, k-bounds, CDAG sizes.

A diagnostic walkthrough of the machinery on the recursive schema d1 of
Section 5 -- useful to understand *why* a verdict holds.

Run:  python examples/schema_explorer.py
"""

from repro.analysis.independence import analyze, chains_of, depth_cap_for
from repro.analysis.kbound import multiplicity, recursive_steps
from repro.schema import paper_d1_dtd
from repro.xquery.parser import parse_query
from repro.xupdate.parser import parse_update

PAIRS = [
    ("/r/a/b/f/a", "delete /r/a/c"),
    ("/descendant::b", "delete /descendant::c"),
    ("//b/ancestor::c", "delete //e"),
    ("//g", "for $x in //f return insert <g/> into $x"),
]


def main() -> None:
    dtd = paper_d1_dtd()
    print(f"schema: d1, |d| = {dtd.size()}, "
          f"recursive types = {sorted(dtd.recursive_symbols())}")
    print()

    for query_text, update_text in PAIRS:
        query = parse_query(query_text)
        update = parse_update(update_text)
        kq, ku = multiplicity(query), multiplicity(update)
        report = analyze(query, update, dtd)
        print(f"q = {query_text}")
        print(f"u = {update_text}")
        print(f"  kq={kq} (R={recursive_steps(query)}), ku={ku}, "
              f"k={report.k}, depth cap={depth_cap_for(dtd, report.k)}")

        returns = sorted(chains_of(report.query_chains.returns, limit=200_000))
        updates = sorted(chains_of(report.update_chains, limit=200_000))
        print(f"  query return chains ({len(returns)}): "
              f"{['.'.join(c) for c in returns[:4]]}"
              f"{' ...' if len(returns) > 4 else ''}")
        print(f"  update chains ({len(updates)}): "
              f"{['.'.join(c) for c in updates[:4]]}"
              f"{' ...' if len(updates) > 4 else ''}")
        print(f"  verdict: {report}")
        for conflict in report.conflicts[:2]:
            print(f"    conflict {conflict}")
        print()


if __name__ == "__main__":
    main()
