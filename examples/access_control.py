"""Schema-level access control (the paper's motivation iii).

A library catalog protects its pricing and title data with *protection
queries*; user updates are admitted only when the chain analysis proves
them independent of every protected region.  Soundness of the analysis
means no admitted update can ever touch a protected node, on any valid
document.

Run:  python examples/access_control.py
"""

from repro.schema import bib_dtd
from repro.viewmaint import AccessController

USER_UPDATES = [
    ("add an author to every book",
     "for $x in //book return insert "
     "<author><last>Calvino</last><first>Italo</first></author> into $x"),
    ("zero out all prices",
     "for $x in //price return replace $x with <price>0</price>"),
    ("rewrite all titles",
     "for $x in //title return replace $x with <title>hacked</title>"),
    ("delete author first names",
     "delete //author/first"),
    ("delete entire books",
     "delete //book"),
    ("retag editors as authors",
     "for $x in //editor return rename $x as author"),
]


def main() -> None:
    guard = AccessController(bib_dtd())
    guard.protect("pricing", "//price")
    guard.protect("titles", "//title")
    print(f"protected regions: {guard.policies()}")
    print()

    for label, update in USER_UPDATES:
        decision = guard.check(update)
        status = "ALLOWED" if decision.allowed else "REJECTED"
        print(f"[{status:8s}] {label}")
        if not decision.allowed:
            print(f"            violates: {list(decision.violated_policies)}")


if __name__ == "__main__":
    main()
